"""The database prompt builder (Algorithm 1).

Pipeline per question:

1. value retriever — BM25 coarse search then LCS re-ranking (§6.2);
2. schema filter — classifier-ranked top-k1 tables / top-k2 columns,
   or gold-driven selection with random padding at training time (§6.1);
3. serialization — schema with metadata (types, comments, representative
   values, keys) plus the matched values, concatenated (§6.3, Figure 4).

If the serialized prompt exceeds the character budget, metadata is
dropped in order of dispensability (representative values, comments,
types) before hard truncation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.db.database import Database
from repro.db.schema import Schema
from repro.errors import SQLSyntaxError
from repro.linking.classifier import SchemaItemClassifier
from repro.linking.schema_filter import FilteredSchema, SchemaFilter
from repro.promptgen.options import PromptOptions
from repro.retrieval.value_retriever import MatchedValue, ValueRetriever


@dataclass(frozen=True)
class DatabasePrompt:
    """The constructed prompt plus the intermediate artifacts.

    ``schema`` is the *effective* schema view downstream consumers see:
    when keys or comments are ablated away, they are removed here too,
    not just from the serialized text.
    """

    text: str
    schema: Schema
    matched_values: tuple[MatchedValue, ...]
    kept_tables: tuple[str, ...]
    options: PromptOptions = PromptOptions()


def apply_schema_ablations(schema: Schema, options: PromptOptions) -> Schema:
    """Strip keys/comments from the structured schema per the options."""
    if options.include_keys and options.include_comments:
        return schema
    from repro.db.schema import Column, Table  # local to avoid import noise

    tables = []
    for table in schema.tables:
        columns = tuple(
            Column(
                name=column.name,
                type=column.type,
                comment=column.comment if options.include_comments else "",
                is_primary=column.is_primary if options.include_keys else False,
            )
            for column in table.columns
        )
        tables.append(
            Table(
                name=table.name,
                columns=columns,
                comment=table.comment if options.include_comments else "",
            )
        )
    return Schema(
        name=schema.name,
        tables=tuple(tables),
        foreign_keys=schema.foreign_keys if options.include_keys else (),
        domain=schema.domain,
    )


class PromptBuilder:
    """Builds database prompts for one database."""

    def __init__(
        self,
        database: Database,
        classifier: SchemaItemClassifier | None = None,
        options: PromptOptions | None = None,
    ):
        self.database = database
        self.options = options or PromptOptions()
        self.classifier = classifier
        self._value_retriever = (
            ValueRetriever(database) if self.options.use_value_retriever else None
        )
        self._schema_filter = SchemaFilter(
            classifier=classifier,
            top_k1=self.options.top_k1,
            top_k2=self.options.top_k2,
        )
        self._representative_cache: dict[tuple[str, str], list] = {}

    # -- public API ---------------------------------------------------------

    def build(
        self,
        question: str,
        gold_sql: str | None = None,
        linking_question: str | None = None,
        matched_values: list[MatchedValue] | None = None,
    ) -> DatabasePrompt:
        """Construct the prompt for ``question``.

        ``gold_sql`` switches to the training-time path: used schema
        items are kept and padded, so train/test prompt distributions
        match (§6.1).  ``linking_question`` (question + external
        knowledge) drives the schema filter; value retrieval always uses
        the bare question, whose words are what the database stores.
        ``matched_values`` short-circuits retrieval when the caller (the
        engine's value_retrieve stage) already ran it.
        """
        linking_question = linking_question or question
        matched = (
            self.retrieve_values(question)
            if matched_values is None
            else list(matched_values)
        )
        filtered = self.filter_schema(
            linking_question, matched, gold_sql=gold_sql, question=question
        )
        text = self.serialize_prompt(filtered.schema, matched)
        effective_schema = apply_schema_ablations(filtered.schema, self.options)
        return DatabasePrompt(
            text=text,
            schema=effective_schema,
            matched_values=tuple(matched),
            kept_tables=filtered.kept_tables,
            options=self.options,
        )

    def retrieve_values(self, question: str) -> list[MatchedValue]:
        """Database values matching the question (§6.2), possibly none."""
        if self._value_retriever is None:
            return []
        return self._value_retriever.retrieve(question)

    def filter_schema(
        self,
        linking_question: str,
        matched: list[MatchedValue],
        gold_sql: str | None = None,
        question: str | None = None,
    ) -> FilteredSchema:
        """Classifier-ranked schema filtering (§6.1).

        With ``gold_sql`` the training-time path keeps the used schema
        items (padded); it falls back to the test-time filter when the
        gold SQL does not parse.  ``question`` is the bare question the
        training filter matches against (defaults to
        ``linking_question``).
        """
        schema = self.database.schema
        if not self.options.use_schema_filter:
            return FilteredSchema(
                schema=schema,
                kept_tables=tuple(t.name.lower() for t in schema.tables),
                kept_columns={
                    t.name.lower(): tuple(c.name for c in t.columns)
                    for t in schema.tables
                },
            )
        if gold_sql is not None:
            try:
                return self._schema_filter.filter_training(
                    question if question is not None else linking_question,
                    schema,
                    gold_sql,
                )
            except SQLSyntaxError:  # staticcheck: disable=EXC001 (unparseable gold SQL falls back to the heuristic filter below)
                pass
        return self._schema_filter.filter(linking_question, schema, matched)

    def serialize_prompt(
        self, schema: Schema, matched: list[MatchedValue]
    ) -> str:
        """Serialize ``schema`` + matched values within the char budget."""
        text = self._serialize(schema, matched, self.options)
        budget = self.options.max_prompt_chars
        if len(text) > budget:
            text = self._shrink(schema, matched, budget)
        return text

    # -- serialization ------------------------------------------------------

    def representative_values(self, table: str, column: str) -> list:
        """Cached representative cell values for one column (§6.3).

        Public accessor: the engine's prompt_build stage hands this to
        slot filling so literal grounding sees the same values the
        serialized prompt shows.
        """
        key = (table.lower(), column.lower())
        if key not in self._representative_cache:
            self._representative_cache[key] = self.database.representative_values(
                table, column, k=self.options.representative_k
            )
        return self._representative_cache[key]

    def _serialize(
        self,
        schema: Schema,
        matched: list[MatchedValue],
        options: PromptOptions,
    ) -> str:
        lines: list[str] = ["database schema :"]
        for table in schema.tables:
            column_parts: list[str] = []
            for column in table.columns:
                attributes: list[str] = []
                if options.include_column_types:
                    attributes.append(column.type.upper())
                if options.include_keys and column.is_primary:
                    attributes.append("primary key")
                if options.include_comments and column.comment:
                    attributes.append(f"comment : {column.comment}")
                if options.include_representative_values:
                    values = self.representative_values(table.name, column.name)
                    if values:
                        rendered = " , ".join(_render_value(v) for v in values)
                        attributes.append(f"values : {rendered}")
                qualified = f"{table.name}.{column.name}"
                if attributes:
                    column_parts.append(f"{qualified} ( {' | '.join(attributes)} )")
                else:
                    column_parts.append(qualified)
            line = f"table {table.name} , columns = [ {' , '.join(column_parts)} ]"
            if options.include_comments and table.comment:
                line += f" -- {table.comment}"
            lines.append(line)
        if options.include_keys and schema.foreign_keys:
            lines.append("foreign keys :")
            for fkey in schema.foreign_keys:
                lines.append(fkey.render())
        if matched:
            lines.append("matched values :")
            lines.extend(match.render() for match in matched)
        return "\n".join(lines)

    def _shrink(
        self, schema: Schema, matched: list[MatchedValue], budget: int
    ) -> str:
        """Drop metadata in order of dispensability to fit the budget."""
        reductions = (
            {"include_representative_values": False},
            {"include_representative_values": False, "include_comments": False},
            {
                "include_representative_values": False,
                "include_comments": False,
                "include_column_types": False,
            },
        )
        for overrides in reductions:
            text = self._serialize(schema, matched, replace(self.options, **overrides))
            if len(text) <= budget:
                return text
        return text[:budget]


def _render_value(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)
