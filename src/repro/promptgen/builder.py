"""The database prompt builder (Algorithm 1).

Pipeline per question:

1. value retriever — BM25 coarse search then LCS re-ranking (§6.2);
2. schema filter — classifier-ranked top-k1 tables / top-k2 columns,
   or gold-driven selection with random padding at training time (§6.1);
3. serialization — schema with metadata (types, comments, representative
   values, keys) plus the matched values, concatenated (§6.3, Figure 4).

If the serialized prompt exceeds the character budget, metadata is
dropped in order of dispensability (representative values, comments,
types) before hard truncation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.db.database import Database
from repro.db.schema import Schema
from repro.errors import SQLSyntaxError
from repro.linking.classifier import SchemaItemClassifier
from repro.linking.schema_filter import FilteredSchema, SchemaFilter
from repro.promptgen.options import PromptOptions
from repro.retrieval.value_retriever import MatchedValue, ValueRetriever


@dataclass(frozen=True)
class DatabasePrompt:
    """The constructed prompt plus the intermediate artifacts.

    ``schema`` is the *effective* schema view downstream consumers see:
    when keys or comments are ablated away, they are removed here too,
    not just from the serialized text.
    """

    text: str
    schema: Schema
    matched_values: tuple[MatchedValue, ...]
    kept_tables: tuple[str, ...]
    options: PromptOptions = PromptOptions()


def _apply_schema_ablations(schema: Schema, options: PromptOptions) -> Schema:
    """Strip keys/comments from the structured schema per the options."""
    if options.include_keys and options.include_comments:
        return schema
    from repro.db.schema import Column, Table  # local to avoid import noise

    tables = []
    for table in schema.tables:
        columns = tuple(
            Column(
                name=column.name,
                type=column.type,
                comment=column.comment if options.include_comments else "",
                is_primary=column.is_primary if options.include_keys else False,
            )
            for column in table.columns
        )
        tables.append(
            Table(
                name=table.name,
                columns=columns,
                comment=table.comment if options.include_comments else "",
            )
        )
    return Schema(
        name=schema.name,
        tables=tuple(tables),
        foreign_keys=schema.foreign_keys if options.include_keys else (),
        domain=schema.domain,
    )


class PromptBuilder:
    """Builds database prompts for one database."""

    def __init__(
        self,
        database: Database,
        classifier: SchemaItemClassifier | None = None,
        options: PromptOptions | None = None,
    ):
        self.database = database
        self.options = options or PromptOptions()
        self.classifier = classifier
        self._value_retriever = (
            ValueRetriever(database) if self.options.use_value_retriever else None
        )
        self._schema_filter = SchemaFilter(
            classifier=classifier,
            top_k1=self.options.top_k1,
            top_k2=self.options.top_k2,
        )
        self._representative_cache: dict[tuple[str, str], list] = {}

    # -- public API ---------------------------------------------------------

    def build(
        self,
        question: str,
        gold_sql: str | None = None,
        linking_question: str | None = None,
    ) -> DatabasePrompt:
        """Construct the prompt for ``question``.

        ``gold_sql`` switches to the training-time path: used schema
        items are kept and padded, so train/test prompt distributions
        match (§6.1).  ``linking_question`` (question + external
        knowledge) drives the schema filter; value retrieval always uses
        the bare question, whose words are what the database stores.
        """
        linking_question = linking_question or question
        matched: list[MatchedValue] = []
        if self._value_retriever is not None:
            matched = self._value_retriever.retrieve(question)

        schema = self.database.schema
        if self.options.use_schema_filter:
            if gold_sql is not None:
                try:
                    filtered = self._schema_filter.filter_training(
                        question, schema, gold_sql
                    )
                except SQLSyntaxError:
                    filtered = self._schema_filter.filter(
                        linking_question, schema, matched
                    )
            else:
                filtered = self._schema_filter.filter(
                    linking_question, schema, matched
                )
        else:
            filtered = FilteredSchema(
                schema=schema,
                kept_tables=tuple(t.name.lower() for t in schema.tables),
                kept_columns={
                    t.name.lower(): tuple(c.name for c in t.columns)
                    for t in schema.tables
                },
            )

        text = self._serialize(filtered.schema, matched, self.options)
        budget = self.options.max_prompt_chars
        if len(text) > budget:
            text = self._shrink(filtered.schema, matched, budget)
        effective_schema = _apply_schema_ablations(filtered.schema, self.options)
        return DatabasePrompt(
            text=text,
            schema=effective_schema,
            matched_values=tuple(matched),
            kept_tables=filtered.kept_tables,
            options=self.options,
        )

    # -- serialization ------------------------------------------------------

    def _representative(self, table: str, column: str) -> list:
        key = (table.lower(), column.lower())
        if key not in self._representative_cache:
            self._representative_cache[key] = self.database.representative_values(
                table, column, k=self.options.representative_k
            )
        return self._representative_cache[key]

    def _serialize(
        self,
        schema: Schema,
        matched: list[MatchedValue],
        options: PromptOptions,
    ) -> str:
        lines: list[str] = ["database schema :"]
        for table in schema.tables:
            column_parts: list[str] = []
            for column in table.columns:
                attributes: list[str] = []
                if options.include_column_types:
                    attributes.append(column.type.upper())
                if options.include_keys and column.is_primary:
                    attributes.append("primary key")
                if options.include_comments and column.comment:
                    attributes.append(f"comment : {column.comment}")
                if options.include_representative_values:
                    values = self._representative(table.name, column.name)
                    if values:
                        rendered = " , ".join(_render_value(v) for v in values)
                        attributes.append(f"values : {rendered}")
                qualified = f"{table.name}.{column.name}"
                if attributes:
                    column_parts.append(f"{qualified} ( {' | '.join(attributes)} )")
                else:
                    column_parts.append(qualified)
            line = f"table {table.name} , columns = [ {' , '.join(column_parts)} ]"
            if options.include_comments and table.comment:
                line += f" -- {table.comment}"
            lines.append(line)
        if options.include_keys and schema.foreign_keys:
            lines.append("foreign keys :")
            for fkey in schema.foreign_keys:
                lines.append(fkey.render())
        if matched:
            lines.append("matched values :")
            lines.extend(match.render() for match in matched)
        return "\n".join(lines)

    def _shrink(
        self, schema: Schema, matched: list[MatchedValue], budget: int
    ) -> str:
        """Drop metadata in order of dispensability to fit the budget."""
        reductions = (
            {"include_representative_values": False},
            {"include_representative_values": False, "include_comments": False},
            {
                "include_representative_values": False,
                "include_comments": False,
                "include_column_types": False,
            },
        )
        for overrides in reductions:
            text = self._serialize(schema, matched, replace(self.options, **overrides))
            if len(text) <= budget:
                return text
        return text[:budget]


def _render_value(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)
