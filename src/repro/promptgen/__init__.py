"""Database prompt construction (paper §6, Algorithm 1)."""

from repro.promptgen.options import PromptOptions
from repro.promptgen.builder import DatabasePrompt, PromptBuilder

__all__ = ["DatabasePrompt", "PromptBuilder", "PromptOptions"]
