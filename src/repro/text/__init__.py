"""Text utilities: tokenization, embeddings, question patterns, similarity.

These are the light-weight stand-ins for the NLP stack the paper uses
(SimCSE sentence embeddings, nltk entity recognition).  They are fully
deterministic so that experiments are reproducible.
"""

from repro.text.tokenize import normalize, sentence_tokens, word_tokens
from repro.text.embedder import HashedNgramEmbedder
from repro.text.pattern import extract_pattern, strip_entities
from repro.text.similarity import (
    cosine_similarity,
    jaccard_similarity,
    token_overlap,
)

__all__ = [
    "HashedNgramEmbedder",
    "cosine_similarity",
    "extract_pattern",
    "jaccard_similarity",
    "normalize",
    "sentence_tokens",
    "strip_entities",
    "token_overlap",
    "word_tokens",
]
