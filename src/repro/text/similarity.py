"""String and vector similarity primitives."""

from __future__ import annotations

import numpy as np

from repro.text.tokenize import stemmed_tokens


def cosine_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity of two vectors; zero vectors score 0.0."""
    left_norm = float(np.linalg.norm(left))
    right_norm = float(np.linalg.norm(right))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return float(np.dot(left, right) / (left_norm * right_norm))


def jaccard_similarity(left: str, right: str) -> float:
    """Jaccard similarity of the two texts' stemmed token sets."""
    left_set = set(stemmed_tokens(left))
    right_set = set(stemmed_tokens(right))
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    return len(left_set & right_set) / len(left_set | right_set)


def token_overlap(query: str, target: str) -> float:
    """Fraction of ``target`` tokens that also appear in ``query``.

    Useful as an asymmetric schema-linking feature: how much of a column
    name is mentioned by the question.  Tokens are plural-stemmed so
    "clients" matches the ``client`` table.
    """
    target_set = set(stemmed_tokens(target))
    if not target_set:
        return 0.0
    query_set = set(stemmed_tokens(query))
    return len(target_set & query_set) / len(target_set)
