"""Question-pattern extraction by entity stripping.

Section 8.2 of the paper strips entities from questions (using nltk)
before computing similarity, so the demonstration retriever matches the
*structure* of a question ("Show the names of members from either _ or
_") instead of its entities ("United States", "Canada").

Offline we implement the same idea with deterministic rules: quoted
strings, numbers, years, and capitalized non-initial words are replaced
by a placeholder token.
"""

from __future__ import annotations

import re

_QUOTED_RE = re.compile(r"'[^']*'|\"[^\"]*\"")
_NUMBER_RE = re.compile(r"\b\d+(?:\.\d+)?\b")

#: Words that are frequently capitalized but are not entities.
_STOP_CAPITALS = frozenset(
    {
        "what", "which", "who", "whom", "whose", "where", "when", "why",
        "how", "show", "list", "find", "give", "return", "display",
        "count", "name", "names", "the", "a", "an", "of", "in", "for",
        "is", "are", "was", "were", "do", "does", "did", "please", "i",
        "order", "group", "and", "or", "not", "all", "each", "every",
        "top", "sql", "id",
    }
)

PLACEHOLDER = "_"


def strip_entities(question: str) -> str:
    """Replace literal entities in ``question`` with a placeholder.

    >>> strip_entities("Show singers born in 1948 or 1949")
    'Show singers born in _ or _'
    """
    text = _QUOTED_RE.sub(PLACEHOLDER, question)
    text = _NUMBER_RE.sub(PLACEHOLDER, text)
    words = text.split()
    stripped: list[str] = []
    for position, word in enumerate(words):
        bare = word.strip(".,;:!?()")
        is_capitalized = bare[:1].isupper() and bare[1:].islower()
        if (
            position > 0
            and is_capitalized
            and bare.lower() not in _STOP_CAPITALS
        ):
            stripped.append(word.replace(bare, PLACEHOLDER))
        else:
            stripped.append(word)
    collapsed: list[str] = []
    for word in stripped:
        if word == PLACEHOLDER and collapsed and collapsed[-1] == PLACEHOLDER:
            continue
        collapsed.append(word)
    return " ".join(collapsed)


def extract_pattern(question: str) -> str:
    """Return the normalized question pattern used for retrieval.

    Entities are stripped, then the text is lowercased so that pattern
    similarity ignores casing.
    """
    return strip_entities(question).lower()
