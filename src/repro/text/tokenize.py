"""Deterministic word-level tokenization helpers."""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\d+(?:\.\d+)?|'[^']*'|\"[^\"]*\"|\S")
_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def normalize(text: str) -> str:
    """Lowercase and collapse whitespace.

    >>> normalize("  How  MANY  Clients? ")
    'how many clients?'
    """
    return " ".join(text.lower().split())


def word_tokens(text: str) -> list[str]:
    """Split ``text`` into word-level tokens, keeping quoted strings intact.

    >>> word_tokens("name = 'Sarah Martinez'")
    ['name', '=', "'Sarah Martinez'"]
    """
    return _WORD_RE.findall(text)


def sentence_tokens(text: str) -> list[str]:
    """Lowercased word tokens with identifier splitting.

    Identifiers written in snake_case or camelCase are split into their
    component words so that schema names and questions share vocabulary,
    e.g. ``account_id`` -> ``account``, ``id``.
    """
    tokens: list[str] = []
    for raw in word_tokens(text):
        if raw.startswith(("'", '"')):
            tokens.append(raw.strip("'\"").lower())
            continue
        decamel = _CAMEL_RE.sub(" ", raw)
        for part in decamel.replace("_", " ").split():
            tokens.append(part.lower())
    return tokens


def stem(token: str) -> str:
    """Light plural stemming: clients -> client, cities -> city.

    Deliberately conservative — only plural suffixes, so schema words
    and question words meet without a full morphological analyzer.
    """
    if len(token) > 3 and token.endswith("ies"):
        return token[:-3] + "y"
    if len(token) > 3 and token.endswith(("ses", "xes", "zes", "hes")):
        return token[:-2]
    if len(token) > 3 and token.endswith("s") and not token.endswith("ss"):
        return token[:-1]
    return token


def stemmed_tokens(text: str) -> list[str]:
    """Lower-cased, identifier-split, plural-stemmed tokens."""
    return [stem(token) for token in sentence_tokens(text)]


def character_ngrams(text: str, order: int) -> list[str]:
    """Return all character n-grams of a padded, normalized string.

    Padding with ``#`` marks word boundaries, which makes short words
    distinguishable from substrings of longer words.
    """
    if order <= 0:
        raise ValueError(f"n-gram order must be positive, got {order}")
    padded = f"#{normalize(text)}#"
    if len(padded) < order:
        return [padded]
    return [padded[i:i + order] for i in range(len(padded) - order + 1)]
