"""Hashed character-n-gram sentence embedder.

The paper uses SimCSE to embed questions for the demonstration
retriever.  Offline we substitute a deterministic feature-hashing
embedder: every character n-gram of the sentence is hashed into a
``dim``-sized vector with a signed hash, and the result is
L2-normalized.  Cosine similarity in this space behaves like a smoothed
string-overlap kernel, which is exactly the property the retriever
needs (semantically near-duplicate questions score high, unrelated
questions score near zero).

Larger ``dim`` means fewer hash collisions and therefore a sharper
similarity signal — this is one of the capacity knobs that scale with
model tier (see :mod:`repro.config`).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.text.tokenize import character_ngrams, sentence_tokens


def _stable_hash(token: str, salt: int) -> int:
    digest = hashlib.blake2b(
        token.encode("utf-8"), digest_size=8, salt=salt.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


class HashedNgramEmbedder:
    """Deterministic sentence embedder based on hashed n-gram features.

    Parameters
    ----------
    dim:
        Dimensionality of the embedding space.
    orders:
        Character n-gram orders to extract (defaults to 3 and 4 grams).
    use_words:
        Also hash whole word tokens, which boosts exact-word matches.
    """

    def __init__(
        self,
        dim: int = 256,
        orders: tuple[int, ...] = (3, 4),
        use_words: bool = True,
    ):
        if dim <= 0:
            raise ValueError(f"embedding dim must be positive, got {dim}")
        self.dim = dim
        self.orders = orders
        self.use_words = use_words

    def _features(self, text: str) -> list[str]:
        if not text.strip():
            return []
        feats: list[str] = []
        for order in self.orders:
            feats.extend(character_ngrams(text, order))
        if self.use_words:
            feats.extend(f"w:{tok}" for tok in sentence_tokens(text))
        return feats

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text`` into a unit-norm ``dim``-vector.

        The empty string maps to the zero vector.
        """
        vec = np.zeros(self.dim, dtype=np.float64)
        for feat in self._features(text):
            index = _stable_hash(feat, salt=1) % self.dim
            sign = 1.0 if _stable_hash(feat, salt=2) % 2 == 0 else -1.0
            vec[index] += sign
        norm = float(np.linalg.norm(vec))
        if norm > 0.0:
            vec /= norm
        return vec

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed a list of texts into a ``(len(texts), dim)`` matrix."""
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.embed(text) for text in texts])

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity between two texts under this embedder."""
        return float(np.dot(self.embed(left), self.embed(right)))


class MemoizedEmbedder:
    """An embedder wrapper memoizing ``embed`` by exact text, with LRU bounds.

    Schema linking embeds the same handful of texts over and over: the
    question once per schema item per scoring pass, and every schema
    item's name/comment once per question.  Memoizing by exact text
    makes the repeats free while producing bit-identical vectors, so
    rankings (and the golden parity suite) are unaffected.  Cached
    vectors are returned read-only because every caller treats them as
    values.

    The memo is meant to be *scoped*: the engine resolves one instance
    per database through its :class:`~repro.engine.cache.StageCache`,
    so schema-item embeddings are shared across every question served
    on that database and evicted with the engine's cache.  ``capacity``
    bounds the memo with LRU eviction (questions churn, item texts
    stay hot); ``None`` means unbounded.
    """

    def __init__(self, base: HashedNgramEmbedder, capacity: int | None = 4096):
        if capacity is not None and capacity < 1:
            raise ValueError(f"memo capacity must be >= 1, got {capacity}")
        self.base = base
        self.capacity = capacity
        self._memo: dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def dim(self) -> int:
        return self.base.dim

    def embed(self, text: str) -> np.ndarray:
        cached = self._memo.get(text)
        if cached is not None:
            self.hits += 1
            # LRU bookkeeping: re-insertion moves the key to the end.
            self._memo[text] = self._memo.pop(text)
            return cached
        self.misses += 1
        vec = self.base.embed(text)
        vec.flags.writeable = False
        self._memo[text] = vec
        if self.capacity is not None and len(self._memo) > self.capacity:
            self._memo.pop(next(iter(self._memo)))
            self.evictions += 1
        return vec

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.embed(text) for text in texts])

    def similarity(self, left: str, right: str) -> float:
        return float(np.dot(self.embed(left), self.embed(right)))

    @property
    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._memo),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
