"""Hashed character-n-gram sentence embedder.

The paper uses SimCSE to embed questions for the demonstration
retriever.  Offline we substitute a deterministic feature-hashing
embedder: every character n-gram of the sentence is hashed into a
``dim``-sized vector with a signed hash, and the result is
L2-normalized.  Cosine similarity in this space behaves like a smoothed
string-overlap kernel, which is exactly the property the retriever
needs (semantically near-duplicate questions score high, unrelated
questions score near zero).

Larger ``dim`` means fewer hash collisions and therefore a sharper
similarity signal — this is one of the capacity knobs that scale with
model tier (see :mod:`repro.config`).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.text.tokenize import character_ngrams, sentence_tokens


def _stable_hash(token: str, salt: int) -> int:
    digest = hashlib.blake2b(
        token.encode("utf-8"), digest_size=8, salt=salt.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


class HashedNgramEmbedder:
    """Deterministic sentence embedder based on hashed n-gram features.

    Parameters
    ----------
    dim:
        Dimensionality of the embedding space.
    orders:
        Character n-gram orders to extract (defaults to 3 and 4 grams).
    use_words:
        Also hash whole word tokens, which boosts exact-word matches.
    """

    def __init__(
        self,
        dim: int = 256,
        orders: tuple[int, ...] = (3, 4),
        use_words: bool = True,
    ):
        if dim <= 0:
            raise ValueError(f"embedding dim must be positive, got {dim}")
        self.dim = dim
        self.orders = orders
        self.use_words = use_words

    def _features(self, text: str) -> list[str]:
        if not text.strip():
            return []
        feats: list[str] = []
        for order in self.orders:
            feats.extend(character_ngrams(text, order))
        if self.use_words:
            feats.extend(f"w:{tok}" for tok in sentence_tokens(text))
        return feats

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text`` into a unit-norm ``dim``-vector.

        The empty string maps to the zero vector.
        """
        vec = np.zeros(self.dim, dtype=np.float64)
        for feat in self._features(text):
            index = _stable_hash(feat, salt=1) % self.dim
            sign = 1.0 if _stable_hash(feat, salt=2) % 2 == 0 else -1.0
            vec[index] += sign
        norm = float(np.linalg.norm(vec))
        if norm > 0.0:
            vec /= norm
        return vec

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed a list of texts into a ``(len(texts), dim)`` matrix."""
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.embed(text) for text in texts])

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity between two texts under this embedder."""
        return float(np.dot(self.embed(left), self.embed(right)))
