"""Reliability primitives: deadlines, retries, breakers, fault injection.

This package gives the serving path first-class failure machinery:

- :class:`Deadline` / :class:`ExecutionGuard` — wall-clock budgets on
  SQL execution, enforced through SQLite's progress handler;
- :class:`RetryPolicy` — bounded attempts with deterministic seeded
  jittered backoff, no real sleeps in tests;
- :class:`CircuitBreaker` — per-resource closed → open → half-open
  protection so a corrupted database stops consuming retry budget;
- :class:`FaultyDatabase` / :class:`FlakyLLM` — seeded fault injection
  so every reliability path is testable deterministically.

All time flows through the injectable :class:`Clock`; tests use
:class:`FakeClock` and never sleep for real.
"""

from repro.reliability.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerStats,
    CircuitBreaker,
)
from repro.reliability.clock import Clock, FakeClock, MonotonicClock, SYSTEM_CLOCK
from repro.reliability.deadline import Deadline, ExecutionGuard
from repro.reliability.faults import (
    BeamDuplicator,
    FaultDecider,
    FaultyDatabase,
    FlakyLLM,
    SchemaHallucinator,
)
from repro.reliability.retry import RetryPolicy
from repro.reliability.sync import new_lock

__all__ = [
    "BeamDuplicator",
    "BreakerStats",
    "CLOSED",
    "CircuitBreaker",
    "Clock",
    "Deadline",
    "ExecutionGuard",
    "FakeClock",
    "FaultDecider",
    "FaultyDatabase",
    "FlakyLLM",
    "HALF_OPEN",
    "MonotonicClock",
    "OPEN",
    "RetryPolicy",
    "SYSTEM_CLOCK",
    "SchemaHallucinator",
    "new_lock",
]
