"""Deterministic fault injection for databases and generators.

Reliability code that is only exercised by real outages is untested
code.  :class:`FaultyDatabase` and :class:`FlakyLLM` wrap the real
components and inject the failure modes the serving path must survive
— execution errors, timeouts, corrupted rows, generation failures — at
configurable rates driven by a seeded RNG, so every injected fault
sequence is reproducible from ``(seed, call order)`` alone.
"""

from __future__ import annotations

import random
from typing import Any

from repro.errors import DeadlineExceededError, ExecutionError, GenerationError

Row = tuple[Any, ...]


def _validate_rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return float(value)


class FaultyDatabase:
    """A :class:`~repro.db.database.Database` wrapper that injects faults.

    Each ``execute`` call draws once from the seeded RNG and, in order
    of precedence, may raise an injected :class:`ExecutionError`
    (``error_rate``), raise an injected
    :class:`DeadlineExceededError` (``timeout_rate``), or corrupt the
    returned rows (``corrupt_rate`` — string cells are garbled, numeric
    cells negated).  All other attributes delegate to the wrapped
    database, so the wrapper is drop-in anywhere a ``Database`` goes.
    """

    def __init__(
        self,
        database,
        error_rate: float = 0.0,
        timeout_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        seed: int = 0,
    ):
        self._database = database
        self.error_rate = _validate_rate("error_rate", error_rate)
        self.timeout_rate = _validate_rate("timeout_rate", timeout_rate)
        self.corrupt_rate = _validate_rate("corrupt_rate", corrupt_rate)
        self._rng = random.Random(f"faulty-database:{seed}")
        self.injected_errors = 0
        self.injected_timeouts = 0
        self.injected_corruptions = 0

    def __getattr__(self, name: str):
        return getattr(self._database, name)

    def _corrupt_cell(self, cell: Any) -> Any:
        if isinstance(cell, str):
            return cell[::-1] + "\x00"
        if isinstance(cell, bool):
            return not cell
        if isinstance(cell, (int, float)):
            return -cell - 1
        return None

    def execute(self, sql: str, max_rows: int = 100_000, deadline=None) -> list[Row]:
        draw = self._rng.random()
        if draw < self.error_rate:
            self.injected_errors += 1
            raise ExecutionError(f"injected fault (draw={draw:.4f}): {sql[:60]!r}")
        if draw < self.error_rate + self.timeout_rate:
            self.injected_timeouts += 1
            raise DeadlineExceededError(
                f"injected timeout (draw={draw:.4f}): {sql[:60]!r}",
                elapsed_s=float("inf"),
            )
        rows = self._database.execute(sql, max_rows=max_rows, deadline=deadline)
        if draw < self.error_rate + self.timeout_rate + self.corrupt_rate and rows:
            self.injected_corruptions += 1
            rows = [tuple(self._corrupt_cell(cell) for cell in row) for row in rows]
        return rows

    def is_executable(self, sql: str, deadline=None) -> bool:
        try:
            self.execute(sql, max_rows=1, deadline=deadline)
            return True
        except ExecutionError:
            return False

    @property
    def injected_faults(self) -> int:
        return self.injected_errors + self.injected_timeouts + self.injected_corruptions


class FlakyLLM:
    """A generator wrapper injecting generation failures and timeouts.

    Wraps anything with a ``generate(question, database, **kwargs)``
    method (a :class:`~repro.core.parser.CodeSParser`, a baseline, a
    stub).  Each call may raise an injected :class:`GenerationError`
    (``failure_rate``) or :class:`DeadlineExceededError`
    (``timeout_rate``); otherwise it delegates.
    """

    def __init__(
        self,
        generator,
        failure_rate: float = 0.0,
        timeout_rate: float = 0.0,
        seed: int = 0,
    ):
        self._generator = generator
        self.failure_rate = _validate_rate("failure_rate", failure_rate)
        self.timeout_rate = _validate_rate("timeout_rate", timeout_rate)
        self._rng = random.Random(f"flaky-llm:{seed}")
        self.injected_failures = 0
        self.injected_timeouts = 0

    def __getattr__(self, name: str):
        return getattr(self._generator, name)

    def generate(self, question: str, database, **kwargs):
        draw = self._rng.random()
        if draw < self.failure_rate:
            self.injected_failures += 1
            raise GenerationError(
                f"injected generation failure (draw={draw:.4f}) for {question[:60]!r}"
            )
        if draw < self.failure_rate + self.timeout_rate:
            self.injected_timeouts += 1
            raise DeadlineExceededError(
                f"injected generation timeout (draw={draw:.4f}) for {question[:60]!r}",
                elapsed_s=float("inf"),
            )
        return self._generator.generate(question, database, **kwargs)
