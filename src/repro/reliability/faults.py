"""Deterministic fault injection for databases and generators.

Reliability code that is only exercised by real outages is untested
code.  :class:`FaultyDatabase` and :class:`FlakyLLM` wrap the real
components and inject the failure modes the serving path must survive
— execution errors, timeouts, corrupted rows, generation failures — at
configurable rates driven by a seeded RNG, so every injected fault
sequence is reproducible from ``(seed, call order)`` alone.
:class:`SchemaHallucinator` injects the *semantic* failure mode — beam
candidates referencing hallucinated schema items — that the lint gate
(:mod:`repro.analysis`) exists to catch, and :class:`BeamDuplicator`
injects the *redundancy* failure mode — surface-variant duplicate
candidates — that the equivalence dedup exists to collapse.
"""

from __future__ import annotations

import random
from typing import Any

from repro.errors import (
    DeadlineExceededError,
    ExecutionError,
    GenerationError,
    SQLSyntaxError,
)

Row = tuple[Any, ...]


def _validate_rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return float(value)


class FaultDecider:
    """The seeded fault-decision core every generation injector shares.

    One decider, one RNG stream, one draw per decision: given
    ``(label, seed)`` the sequence of ``None`` / ``"failure"`` /
    ``"timeout"`` verdicts is reproducible from call order alone.  Both
    the legacy :class:`FlakyLLM` generator wrapper (eval harness) and
    the provider-protocol :class:`repro.lm.providers.FlakyProvider`
    (router chaos tests) delegate here, so the two injectors cannot
    drift apart in rate semantics or determinism.
    """

    def __init__(
        self,
        failure_rate: float = 0.0,
        timeout_rate: float = 0.0,
        seed: int = 0,
        label: str = "fault-decider",
    ):
        self.failure_rate = _validate_rate("failure_rate", failure_rate)
        self.timeout_rate = _validate_rate("timeout_rate", timeout_rate)
        self.seed = seed
        self.label = label
        self._rng = random.Random(f"{label}:{seed}")
        self.injected_failures = 0
        self.injected_timeouts = 0

    def decide(self) -> tuple[str | None, float]:
        """One seeded decision: ``(verdict, draw)``.

        ``verdict`` is ``"failure"``, ``"timeout"``, or ``None`` (the
        call should proceed); ``draw`` is the uniform sample behind it,
        surfaced so injectors can echo it in error messages.
        """
        draw = self._rng.random()
        if draw < self.failure_rate:
            self.injected_failures += 1
            return "failure", draw
        if draw < self.failure_rate + self.timeout_rate:
            self.injected_timeouts += 1
            return "timeout", draw
        return None, draw

    @property
    def injected_faults(self) -> int:
        return self.injected_failures + self.injected_timeouts


class FaultyDatabase:
    """A :class:`~repro.db.database.Database` wrapper that injects faults.

    Each ``execute`` call draws once from the seeded RNG and, in order
    of precedence, may raise an injected :class:`ExecutionError`
    (``error_rate``), raise an injected
    :class:`DeadlineExceededError` (``timeout_rate``), or corrupt the
    returned rows (``corrupt_rate`` — string cells are garbled, numeric
    cells negated).  All other attributes delegate to the wrapped
    database, so the wrapper is drop-in anywhere a ``Database`` goes.
    """

    def __init__(
        self,
        database,
        error_rate: float = 0.0,
        timeout_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        seed: int = 0,
    ):
        self._database = database
        self.error_rate = _validate_rate("error_rate", error_rate)
        self.timeout_rate = _validate_rate("timeout_rate", timeout_rate)
        self.corrupt_rate = _validate_rate("corrupt_rate", corrupt_rate)
        self._rng = random.Random(f"faulty-database:{seed}")
        self.injected_errors = 0
        self.injected_timeouts = 0
        self.injected_corruptions = 0

    def __getattr__(self, name: str):
        return getattr(self._database, name)

    def _corrupt_cell(self, cell: Any) -> Any:
        if isinstance(cell, str):
            return cell[::-1] + "\x00"
        if isinstance(cell, bool):
            return not cell
        if isinstance(cell, (int, float)):
            return -cell - 1
        return None

    def execute(self, sql: str, max_rows: int = 100_000, deadline=None) -> list[Row]:
        draw = self._rng.random()
        if draw < self.error_rate:
            self.injected_errors += 1
            raise ExecutionError(f"injected fault (draw={draw:.4f}): {sql[:60]!r}")
        if draw < self.error_rate + self.timeout_rate:
            self.injected_timeouts += 1
            raise DeadlineExceededError(
                f"injected timeout (draw={draw:.4f}): {sql[:60]!r}",
                elapsed_s=float("inf"),
            )
        rows = self._database.execute(sql, max_rows=max_rows, deadline=deadline)
        if draw < self.error_rate + self.timeout_rate + self.corrupt_rate and rows:
            self.injected_corruptions += 1
            rows = [tuple(self._corrupt_cell(cell) for cell in row) for row in rows]
        return rows

    def is_executable(self, sql: str, deadline=None) -> bool:
        try:
            self.execute(sql, max_rows=1, deadline=deadline)
            return True
        except ExecutionError:
            return False

    @property
    def injected_faults(self) -> int:
        return self.injected_errors + self.injected_timeouts + self.injected_corruptions


class SchemaHallucinator:
    """A beam perturber that injects hallucinated-schema candidates.

    Real LLMs routinely hallucinate near-miss schema items (the
    dominant error class in Rajkumar et al.'s audit); this repro's
    retrieval-and-fill generator is schema-grounded and cannot.  The
    hallucinator restores that failure mode deterministically so the
    lint gate has something to catch: install it as
    ``CodeSParser(beam_perturber=...)`` and, at ``rate`` per beam, it
    prepends ``n_candidates`` copies of the top candidate whose last
    schema identifier is renamed to a near-miss name.  The corrupted
    SQL still parses — it fails *semantically* (unknown table/column),
    which is exactly the class of candidate the ungated beam pays an
    execution round-trip to reject.
    """

    def __init__(self, rate: float = 1.0, n_candidates: int = 2, seed: int = 0):
        self.rate = _validate_rate("rate", rate)
        self.n_candidates = n_candidates
        self._rng = random.Random(f"schema-hallucinator:{seed}")
        self.injected_candidates = 0

    def __call__(self, beam: list[str]) -> list[str]:
        if not beam or self._rng.random() >= self.rate:
            return beam
        corrupted = []
        for index in range(self.n_candidates):
            bad = self._hallucinate(beam[0], index)
            if bad is not None and bad not in beam and bad not in corrupted:
                corrupted.append(bad)
        self.injected_candidates += len(corrupted)
        return corrupted + beam

    def _hallucinate(self, sql: str, variant: int) -> str | None:
        """Rename the last schema identifier in ``sql`` to a near-miss."""
        from repro.sqlgen.lexer import TokenKind, tokenize_sql

        try:
            tokens = tokenize_sql(sql)
        except SQLSyntaxError:
            return None
        targets = [
            token
            for position, token in enumerate(tokens)
            if token.kind is TokenKind.IDENTIFIER
            # skip function names: f(...) stays callable
            and not (
                position + 1 < len(tokens)
                and tokens[position + 1].kind is TokenKind.PUNCT
                and tokens[position + 1].value == "("
            )
        ]
        if not targets:
            return None
        token = targets[-1]
        phantom = f"{token.value}_x{variant}"
        end = token.position + len(token.value)
        return sql[: token.position] + phantom + sql[end:]


class BeamDuplicator:
    """A beam perturber that injects surface-variant duplicate candidates.

    Real LLM beams are riddled with candidates that differ only in
    spelling — reordered conjuncts, ``BETWEEN`` vs. explicit range,
    identifier casing — and execute identically (Rajkumar et al.); this
    repro's generator dedupes by exact text and cannot reproduce that
    redundancy.  The duplicator restores it deterministically so the
    equivalence dedup in :mod:`repro.core.parser` has something to
    collapse: install it as ``CodeSParser(beam_perturber=...)`` and, at
    ``rate`` per beam, it prepends up to ``n_duplicates``
    canonically-equivalent rewrites of the top candidate.  Without
    dedup each duplicate costs the beam one redundant execution
    round-trip — exactly the waste the engine exists to avoid.
    """

    def __init__(self, rate: float = 1.0, n_duplicates: int = 2, seed: int = 0):
        self.rate = _validate_rate("rate", rate)
        self.n_duplicates = n_duplicates
        self._rng = random.Random(f"beam-duplicator:{seed}")
        self.injected_duplicates = 0

    def __call__(self, beam: list[str]) -> list[str]:
        if not beam or self._rng.random() >= self.rate:
            return beam
        duplicates = []
        for index in range(self.n_duplicates):
            variant = self._surface_variant(beam[0], index)
            if variant is not None and variant not in beam and variant not in duplicates:
                duplicates.append(variant)
        self.injected_duplicates += len(duplicates)
        return duplicates + beam

    def _surface_variant(self, sql: str, variant: int) -> str | None:
        """The ``variant``-th execution-equivalent respelling of ``sql``.

        Rewrites cycle through the surface freedoms the canonicalizer
        erases — reversed AND/OR conjuncts, reversed IN lists, flipped
        join-edge orientation, identifier case-flips (the sqlgen
        serializer preserves casing; SQLite and the canonical key do
        not care).  None of them can change execution results.
        """
        from dataclasses import replace

        from repro.sqlgen.ast import (
            Aggregation,
            ColumnRef,
            CompoundCondition,
            InCondition,
            JoinEdge,
            SelectItem,
        )
        from repro.sqlgen.parser import parse_sql
        from repro.sqlgen.serializer import serialize

        try:
            query = parse_sql(sql)
        except SQLSyntaxError:
            return None

        def case_flip(name: str) -> str:
            flipped = name.upper() if name != name.upper() else name.lower()
            return flipped

        rewrites = []
        if isinstance(query.where, CompoundCondition) and len(query.where.conditions) > 1:
            rewrites.append(
                replace(
                    query,
                    where=CompoundCondition(
                        op=query.where.op,
                        conditions=tuple(reversed(query.where.conditions)),
                    ),
                )
            )
        if isinstance(query.where, InCondition) and len(query.where.values) > 1:
            rewrites.append(
                replace(
                    query,
                    where=InCondition(
                        expr=query.where.expr,
                        values=tuple(reversed(query.where.values)),
                        negated=query.where.negated,
                    ),
                )
            )
        if query.joins:
            edge = query.joins[0]
            rewrites.append(
                replace(
                    query,
                    joins=(
                        JoinEdge(table=edge.table, left=edge.right, right=edge.left),
                        *query.joins[1:],
                    ),
                )
            )
        rewrites.append(replace(query, from_table=case_flip(query.from_table)))
        for index, item in enumerate(query.select_items):
            expr = item.expr
            if isinstance(expr, ColumnRef) and expr.column != "*":
                flipped_expr = ColumnRef(expr.table, case_flip(expr.column))
            elif isinstance(expr, Aggregation) and expr.arg.column != "*":
                flipped_expr = Aggregation(
                    func=expr.func,
                    arg=ColumnRef(expr.arg.table, case_flip(expr.arg.column)),
                    distinct=expr.distinct,
                )
            else:
                continue
            items = list(query.select_items)
            items[index] = SelectItem(expr=flipped_expr, alias=item.alias)
            rewrites.append(replace(query, select_items=tuple(items)))

        seen: list[str] = []
        for rewrite in rewrites:
            text = serialize(rewrite)
            if text != sql and text not in seen:
                seen.append(text)
        return seen[variant] if variant < len(seen) else None


class FlakyLLM:
    """A generator wrapper injecting generation failures and timeouts.

    Wraps anything with a ``generate(question, database, **kwargs)``
    method (a :class:`~repro.core.parser.CodeSParser`, a baseline, a
    stub).  Each call may raise an injected :class:`GenerationError`
    (``failure_rate``) or :class:`DeadlineExceededError`
    (``timeout_rate``); otherwise it delegates.

    Thin shim over :class:`FaultDecider` — the provider-protocol
    injector (:class:`repro.lm.providers.FlakyProvider`) shares the
    same decision core, so eval-harness chaos and router chaos draw
    from one rate semantics.  The RNG label and stream are unchanged
    from the pre-decider implementation: ``(seed, call order)`` still
    reproduces the same fault sequence byte-for-byte.
    """

    def __init__(
        self,
        generator,
        failure_rate: float = 0.0,
        timeout_rate: float = 0.0,
        seed: int = 0,
    ):
        self._generator = generator
        self._decider = FaultDecider(
            failure_rate=failure_rate,
            timeout_rate=timeout_rate,
            seed=seed,
            label="flaky-llm",
        )

    def __getattr__(self, name: str):
        return getattr(self._generator, name)

    @property
    def failure_rate(self) -> float:
        return self._decider.failure_rate

    @property
    def timeout_rate(self) -> float:
        return self._decider.timeout_rate

    @property
    def injected_failures(self) -> int:
        return self._decider.injected_failures

    @property
    def injected_timeouts(self) -> int:
        return self._decider.injected_timeouts

    def generate(self, question: str, database, **kwargs):
        verdict, draw = self._decider.decide()
        if verdict == "failure":
            raise GenerationError(
                f"injected generation failure (draw={draw:.4f}) for {question[:60]!r}"
            )
        if verdict == "timeout":
            raise DeadlineExceededError(
                f"injected generation timeout (draw={draw:.4f}) for {question[:60]!r}",
                elapsed_s=float("inf"),
            )
        return self._generator.generate(question, database, **kwargs)
