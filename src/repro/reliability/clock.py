"""Injectable clocks so reliability code is testable without real time.

Everything in :mod:`repro.reliability` reads time through a
:class:`Clock` instead of calling :func:`time.monotonic` directly.
Production code uses :class:`MonotonicClock`; tests use
:class:`FakeClock`, which only moves when told to, so deadline expiry
and backoff schedules are fully deterministic and never sleep.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Minimal time source: a monotonic ``now`` and a ``sleep``."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...

    def sleep(self, seconds: float) -> None:  # pragma: no cover - protocol
        ...


class MonotonicClock:
    """The real wall clock, backed by :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock:
    """A manually advanced clock for deterministic tests.

    ``sleep`` advances the clock instead of blocking, and every sleep
    is recorded so tests can assert on the exact backoff schedule.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        self.sleeps.append(seconds)
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards: {seconds}")
        self._now += seconds


#: Shared default so callers don't allocate a clock per operation.
SYSTEM_CLOCK = MonotonicClock()
