"""Concurrency primitives owned by the reliability layer.

ARCH005 confines ``threading`` imports to ``serving/`` and
``reliability/`` so concurrency stays auditable in two places.  Code
elsewhere (e.g. the provider router in :mod:`repro.lm.providers`) that
needs a lock for counter integrity obtains one through this factory
instead of importing ``threading`` directly — the primitive's *origin*
stays inside the audited boundary even when the lock travels.
"""

from __future__ import annotations

import threading


def new_lock() -> threading.RLock:
    """A fresh reentrant lock for callers outside the concurrency zone."""
    return threading.RLock()
