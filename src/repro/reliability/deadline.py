"""Wall-clock deadlines for SQL execution.

The seed repository bounded runaway queries only by SQLite VM steps
(:data:`repro.db.backends.sqlite._PROGRESS_STEPS`), which is hardware- and
query-shape-dependent: a step budget that stops a runaway join on one
machine lets it run for minutes on another.  A :class:`Deadline` is an
absolute point on an injectable clock; :class:`ExecutionGuard` turns it
into a SQLite progress handler that polls *elapsed time* every few
thousand VM steps and aborts the statement once the budget is spent.

The guard cooperates with :class:`repro.db.backends.sqlite.Database`'s
progress-handler stack, so nested executions (``is_executable`` inside
a metric loop, a beam probe inside the harness) restore the outer
guard instead of clobbering it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeadlineExceededError
from repro.reliability.clock import Clock, SYSTEM_CLOCK

#: Poll the clock every this many SQLite VM steps.  Small enough that a
#: runaway join is caught within milliseconds of expiry, large enough
#: that the handler adds no measurable overhead to normal queries.
DEFAULT_POLL_STEPS = 5_000


@dataclass(frozen=True)
class Deadline:
    """An absolute wall-clock expiry on an injectable clock."""

    expires_at: float
    budget_s: float
    clock: Clock = field(default_factory=lambda: SYSTEM_CLOCK, repr=False)
    started_at: float = 0.0

    @classmethod
    def after(cls, seconds: float, clock: Clock | None = None) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        if seconds <= 0:
            raise ValueError(f"deadline budget must be positive, got {seconds}")
        clock = clock if clock is not None else SYSTEM_CLOCK
        start = clock.now()
        return cls(
            expires_at=start + seconds,
            budget_s=float(seconds),
            clock=clock,
            started_at=start,
        )

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - self.clock.now()

    def elapsed(self) -> float:
        return self.clock.now() - self.started_at

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired():
            raise DeadlineExceededError(
                f"{what} exceeded its {self.budget_s:.3f}s deadline "
                f"({self.elapsed():.3f}s elapsed)",
                elapsed_s=self.elapsed(),
                budget_s=self.budget_s,
            )


class ExecutionGuard:
    """Context manager enforcing a :class:`Deadline` on a database.

    Installs a progress handler on the database's connection that
    aborts the running statement once the deadline passes.  The target
    must expose the progress-handler *stack* protocol of
    :class:`repro.db.backends.sqlite.Database` (``_push_progress_handler`` /
    ``_pop_progress_handler``), which is what guarantees any
    pre-existing handler — an outer guard, the VM-step bound — is
    restored on exit rather than cleared.
    """

    def __init__(self, database, deadline: Deadline, poll_steps: int = DEFAULT_POLL_STEPS):
        self.database = database
        self.deadline = deadline
        self.poll_steps = poll_steps
        self.tripped = False

    def _on_progress(self) -> int:
        if self.deadline.expired():
            self.tripped = True
            return 1  # non-zero aborts the statement
        return 0

    def __enter__(self) -> "ExecutionGuard":
        self.deadline.check("execution")
        self.database._push_progress_handler(self._on_progress, self.poll_steps)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.database._pop_progress_handler()
        if self.tripped or (exc is not None and self.deadline.expired()):
            raise DeadlineExceededError(
                f"query exceeded its {self.deadline.budget_s:.3f}s deadline "
                f"({self.deadline.elapsed():.3f}s elapsed)",
                elapsed_s=self.deadline.elapsed(),
                budget_s=self.deadline.budget_s,
            ) from exc
        return False
