"""Bounded retries with deterministic, seeded, jittered backoff.

The schedule is derived entirely from the policy's seed, so two runs
with the same policy see byte-identical delays — no hidden global RNG.
Delays are *applied* through an injectable clock, so tests pass a
:class:`~repro.reliability.clock.FakeClock` and never actually sleep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import ReproError
from repro.reliability.clock import Clock, SYSTEM_CLOCK

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter, bounded attempts.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    call plus at most two retries.  The delay before retry *k* (1-based)
    is ``min(max_delay_s, base_delay_s * multiplier**(k-1))`` scaled by
    a seeded uniform draw in ``[1-jitter, 1]``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must lie in [0, 1], got {self.jitter}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")

    def delays(self) -> list[float]:
        """The deterministic backoff schedule (one delay per retry)."""
        rng = random.Random(f"retry-policy:{self.seed}")
        schedule = []
        for attempt in range(1, self.max_attempts):
            raw = min(self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1))
            scale = 1.0 - self.jitter * rng.random()
            schedule.append(raw * scale)
        return schedule

    def call(
        self,
        fn: Callable[[], T],
        retry_on: tuple[type[BaseException], ...] = (ReproError,),
        clock: Clock | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> T:
        """Run ``fn`` under this policy.

        Exceptions matching ``retry_on`` are retried until the attempt
        budget is exhausted, then re-raised; anything else propagates
        immediately.  ``on_retry(attempt, exc)`` is notified before
        each backoff sleep.
        """
        clock = clock if clock is not None else SYSTEM_CLOCK
        schedule = self.delays()
        last_exc: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on as exc:
                last_exc = exc
                if attempt == self.max_attempts:
                    break
                if on_retry is not None:
                    on_retry(attempt, exc)
                clock.sleep(schedule[attempt - 1])
        assert last_exc is not None
        raise last_exc
