"""A per-resource circuit breaker (closed → open → half-open).

In an eval run a corrupted benchmark database fails every query it
sees; without a breaker each of its examples still burns the full
retry budget.  The breaker trips after ``failure_threshold``
consecutive failures, rejects calls for ``recovery_timeout_s`` (open),
then lets a limited number of probes through (half-open): a probe
success closes the circuit, a probe failure re-opens it.

Time is read through an injectable clock so state transitions are
deterministic in tests.

State transitions are lock-protected: the serving layer's worker
threads share one breaker per database, and the half-open contract —
at most ``half_open_max_probes`` concurrent probes — only holds if the
recover/admit sequence is atomic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import CircuitOpenError
from repro.reliability.clock import Clock, SYSTEM_CLOCK

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerStats:
    """One frozen snapshot of a breaker's state and counters.

    Observability readers (``ServerMetrics``, the ``repro providers``
    CLI) consume this instead of reaching into the breaker's private
    attributes; the snapshot is taken under the breaker lock, so the
    fields are mutually consistent.
    """

    name: str
    state: str
    consecutive_failures: int
    open_count: int
    total_failures: int
    total_rejections: int
    #: Clock time of the last state transition (breaker creation time
    #: until the first trip).
    last_transition_at: float

    def as_dict(self) -> dict[str, object]:
        """Plain-data form for layers that must not import this module."""
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "open_count": self.open_count,
            "total_failures": self.total_failures,
            "total_rejections": self.total_rejections,
            "last_transition_at": self.last_transition_at,
        }


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed recovery."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_timeout_s: float = 30.0,
        half_open_max_probes: int = 1,
        clock: Clock | None = None,
        name: str = "",
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if recovery_timeout_s < 0:
            raise ValueError(f"recovery_timeout_s must be >= 0, got {recovery_timeout_s}")
        if half_open_max_probes < 1:
            raise ValueError(f"half_open_max_probes must be >= 1, got {half_open_max_probes}")
        self.failure_threshold = failure_threshold
        self.recovery_timeout_s = recovery_timeout_s
        self.half_open_max_probes = half_open_max_probes
        self.name = name
        self._clock = clock if clock is not None else SYSTEM_CLOCK
        self._lock = threading.RLock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_probes = 0
        self.total_failures = 0
        self.total_rejections = 0
        self.open_count = 0
        self._last_transition_at = self._clock.now()

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_recover()
            return self._state

    def _maybe_recover(self) -> None:
        if (
            self._state == OPEN
            and self._clock.now() - self._opened_at >= self.recovery_timeout_s
        ):
            self._state = HALF_OPEN
            self._half_open_probes = 0
            self._last_transition_at = self._clock.now()

    @property
    def stats(self) -> BreakerStats:
        """A frozen, lock-consistent snapshot for observability readers."""
        with self._lock:
            self._maybe_recover()
            return BreakerStats(
                name=self.name,
                state=self._state,
                consecutive_failures=self._consecutive_failures,
                open_count=self.open_count,
                total_failures=self.total_failures,
                total_rejections=self.total_rejections,
                last_transition_at=self._last_transition_at,
            )

    def allow(self) -> bool:
        """Would a call be admitted right now?  (Does not consume a probe.)"""
        with self._lock:
            self._maybe_recover()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                return self._half_open_probes < self.half_open_max_probes
            return False

    def admit(self) -> bool:
        """Admit or reject a call, consuming a half-open probe slot.

        Callers that use ``admit`` must report the call's outcome via
        :meth:`record_success` / :meth:`record_failure`.  The
        recover-then-consume sequence runs under the breaker lock, so
        racing threads at a half-open circuit win exactly
        ``half_open_max_probes`` slots between them.
        """
        with self._lock:
            self._maybe_recover()
            if self._state == CLOSED:
                return True
            if (
                self._state == HALF_OPEN
                and self._half_open_probes < self.half_open_max_probes
            ):
                self._half_open_probes += 1
                return True
            self.total_rejections += 1
            return False

    # -- outcome recording ---------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._last_transition_at = self._clock.now()
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self.total_failures += 1
            if self._state == HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock.now()
        self._last_transition_at = self._opened_at
        self._consecutive_failures = 0
        self._half_open_probes = 0
        self.open_count += 1

    # -- call wrapper ----------------------------------------------------------

    def call(
        self,
        fn: Callable[[], T],
        failure_types: tuple[type[BaseException], ...] = (Exception,),
    ) -> T:
        """Run ``fn`` through the breaker.

        Raises :class:`CircuitOpenError` without calling ``fn`` when the
        circuit rejects the call.  Exceptions matching ``failure_types``
        are recorded as failures and re-raised.
        """
        if not self.admit():
            label = f" {self.name!r}" if self.name else ""
            raise CircuitOpenError(
                f"circuit{label} is {self._state}; retry after "
                f"{self.recovery_timeout_s:.3f}s recovery timeout"
            )
        try:
            result = fn()
        except failure_types as exc:
            self.record_failure()
            raise exc
        self.record_success()
        return result
