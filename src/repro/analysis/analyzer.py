"""Schema-aware semantic analysis of SQL ASTs.

:class:`SemanticAnalyzer` walks a :class:`repro.sqlgen.ast.Query`
against a :class:`~repro.analysis.catalog.SchemaCatalog` and emits
structured :class:`~repro.analysis.diagnostics.Diagnostic` findings —
the static pre-execution gate that catches hallucinated schema
references, aggregate misuse, and type-incompatible comparisons before
any execution round-trip is spent (the error classes Rajkumar et al.
show dominate LLM text-to-SQL failures).

Scope model: each query level resolves column references against its
own FROM/JOIN tables (:meth:`Query.local_tables`); subqueries
additionally see their enclosing scopes (correlated references), and
compound arms each resolve independently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.catalog import CatalogColumn, SchemaCatalog
from repro.analysis.diagnostics import (
    AGGREGATE_IN_WHERE,
    AMBIGUOUS_COLUMN,
    DIALECT_CASE_FOLD,
    HAVING_SCOPE,
    JOIN_NO_FK,
    ORDER_BY_SCOPE,
    PARSE_ERROR,
    RULE_SEVERITIES,
    SET_OP_ARITY,
    TABLE_NOT_IN_SCOPE,
    TYPE_MISMATCH,
    UNGROUPED_COLUMN,
    UNKNOWN_COLUMN,
    UNKNOWN_TABLE,
    Diagnostic,
)
from repro.errors import SQLSyntaxError
from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    Condition,
    Expression,
    InCondition,
    LikeCondition,
    Literal,
    NullCondition,
    Query,
)
from repro.sqlgen.dialects import parse_dialect_sql
from repro.sqlgen.parser import parse_sql
from repro.sqlgen.spans import identifier_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (db -> analysis)
    from repro.db.backends.base import BackendCapabilities

#: Aggregate functions that require a numeric argument.
_NUMERIC_AGGREGATES = frozenset({"sum", "avg"})


class SemanticAnalyzer:
    """Lints SQL queries against one database's schema catalog.

    ``capabilities`` (any object shaped like
    :class:`repro.db.backends.base.BackendCapabilities`) makes the
    analyzer dialect-aware: ``analyze_sql`` parses in the backend's
    dialect, and capability-gated rules fire — e.g. a warning for
    letter-bearing LIKE patterns on backends whose LIKE is
    case-sensitive, where SQLite's case-folded match set silently
    diverges.  Without it the analyzer behaves exactly as before
    (SQLite dialect, no capability rules).
    """

    def __init__(
        self,
        catalog: SchemaCatalog,
        capabilities: "BackendCapabilities | None" = None,
    ):
        self.catalog = catalog
        self.capabilities = capabilities

    @property
    def dialect(self) -> str:
        return getattr(self.capabilities, "dialect", "sqlite")

    # -- public API ----------------------------------------------------------

    def analyze_sql(self, sql: str) -> list[Diagnostic]:
        """Parse and analyze ``sql``; spans point into the given text.

        SQL outside the parseable subset yields a single warning-tier
        ``parse-error`` diagnostic: it may be perfectly valid SQLite,
        the analyzer just cannot vouch for it.
        """
        try:
            query = parse_dialect_sql(sql, self.dialect)
        except SQLSyntaxError as exc:
            return [
                Diagnostic(
                    code=PARSE_ERROR,
                    severity=RULE_SEVERITIES[PARSE_ERROR],
                    message=f"SQL outside the analyzable subset: {exc}",
                )
            ]
        return self.analyze(query, sql)

    def analyze(self, query: Query, sql: str = "") -> list[Diagnostic]:
        """All diagnostics for ``query`` (deduplicated, document order)."""
        diags: list[Diagnostic] = []
        self._check_tree(query, sql, diags, outer=())
        return list(dict.fromkeys(diags))

    # -- tree / compound handling --------------------------------------------

    def _check_tree(
        self, query: Query, sql: str, diags: list[Diagnostic], outer: tuple[str, ...]
    ) -> int | None:
        arities = [
            self._check_arm(arm, sql, diags, outer)
            for arm in query.compound_chain()
        ]
        known = {arity for arity in arities if arity is not None}
        if len(known) > 1:
            op = query.compound_op or "set operation"
            self._emit(
                diags, SET_OP_ARITY, sql, query.from_table,
                f"{op} arms project different column counts: "
                f"{sorted(known)}",
            )
        return arities[0]

    # -- one simple SELECT ----------------------------------------------------

    def _check_arm(
        self, query: Query, sql: str, diags: list[Diagnostic], outer: tuple[str, ...]
    ) -> int | None:
        local = query.local_tables()
        for table in local:
            if not self.catalog.has_table(table):
                self._emit(
                    diags, UNKNOWN_TABLE, sql, table,
                    f"unknown table {table!r}",
                )
        scope = tuple(t for t in local if self.catalog.has_table(t))
        scope_known = len(scope) == len(local)
        aliases = {
            item.alias.lower() for item in query.select_items if item.alias
        }

        # SELECT list ---------------------------------------------------------
        arity: int | None = 0
        projected_keys: set[str] = set()
        select_has_aggregate = False
        for item in query.select_items:
            expr = item.expr
            if isinstance(expr, Aggregation):
                select_has_aggregate = True
                self._check_aggregation(expr, scope, outer, sql, diags)
                if arity is not None:
                    arity += 1
            elif isinstance(expr, ColumnRef):
                if expr.column == "*":
                    star_width = self._star_arity(expr, scope, scope_known)
                    arity = (
                        None
                        if arity is None or star_width is None
                        else arity + star_width
                    )
                    if expr.table:
                        self._resolve(expr, scope, outer, sql, diags)
                else:
                    resolved = self._resolve(expr, scope, outer, sql, diags)
                    if resolved is not None:
                        projected_keys.add(resolved.key())
                    if arity is not None:
                        arity += 1
            else:
                if arity is not None:
                    arity += 1

        # GROUP BY / aggregate misuse ------------------------------------------
        group_keys: set[str] = set()
        for col in query.group_by:
            resolved = self._resolve(col, scope, outer, sql, diags)
            group_keys.add(resolved.key() if resolved else col.column.lower())
        if query.group_by:
            for item in query.select_items:
                expr = item.expr
                if not isinstance(expr, ColumnRef):
                    continue
                if expr.column == "*":
                    self._emit(
                        diags, UNGROUPED_COLUMN, sql, str(expr) or "*",
                        "SELECT * under GROUP BY projects non-grouped columns",
                    )
                    continue
                if not self._in_group(expr, group_keys, scope, outer):
                    self._emit(
                        diags, UNGROUPED_COLUMN, sql, str(expr),
                        f"column {expr} is projected but neither grouped "
                        f"nor aggregated",
                    )

        # WHERE ----------------------------------------------------------------
        if query.where is not None:
            self._check_condition(
                query.where, "where", scope, outer, group_keys, sql, diags
            )

        # HAVING ---------------------------------------------------------------
        if query.having is not None:
            if not query.group_by:
                self._emit(
                    diags, HAVING_SCOPE, sql, query.from_table,
                    "HAVING without GROUP BY",
                )
            self._check_condition(
                query.having, "having", scope, outer, group_keys, sql, diags
            )

        # ORDER BY -------------------------------------------------------------
        for item in query.order_by:
            expr = item.expr
            if isinstance(expr, Aggregation):
                self._check_aggregation(expr, scope, outer, sql, diags)
                continue
            if not isinstance(expr, ColumnRef) or expr.column == "*":
                continue
            if not expr.table and expr.column.lower() in aliases:
                continue  # references a SELECT alias
            resolved = self._resolve(expr, scope, outer, sql, diags)
            if (
                query.group_by
                and resolved is not None
                and resolved.key() not in group_keys
                and resolved.key() not in projected_keys
                and not select_has_aggregate
            ):
                self._emit(
                    diags, ORDER_BY_SCOPE, sql, str(expr),
                    f"ORDER BY {expr} is neither grouped nor projected "
                    f"in this grouped query",
                )

        # JOIN edges -----------------------------------------------------------
        for edge in query.joins:
            left = self._resolve(edge.left, scope, outer, sql, diags)
            right = self._resolve(edge.right, scope, outer, sql, diags)
            if left is None or right is None:
                continue
            if left.is_numeric != right.is_numeric:
                self._emit(
                    diags, TYPE_MISMATCH, sql, str(edge.left),
                    f"join compares {_describe(left)} with {_describe(right)}",
                )
            if self.catalog.fk_pairs and not self.catalog.has_fk_edge(
                left.key(), right.key()
            ):
                self._emit(
                    diags, JOIN_NO_FK, sql, str(edge.left),
                    f"join {edge.left} = {edge.right} follows no declared "
                    f"PK/FK edge",
                )
        return arity

    # -- conditions -----------------------------------------------------------

    def _check_condition(
        self,
        cond: Condition,
        clause: str,
        scope: tuple[str, ...],
        outer: tuple[str, ...],
        group_keys: set[str],
        sql: str,
        diags: list[Diagnostic],
    ) -> None:
        if isinstance(cond, CompoundCondition):
            for sub in cond.conditions:
                self._check_condition(
                    sub, clause, scope, outer, group_keys, sql, diags
                )
            return

        exprs: list[Expression] = []
        if isinstance(cond, BinaryCondition):
            exprs.append(cond.left)
            if isinstance(cond.right, (ColumnRef, Literal, Aggregation)):
                exprs.append(cond.right)
        elif isinstance(
            cond, (InCondition, BetweenCondition, LikeCondition, NullCondition)
        ):
            exprs.append(cond.expr)

        for expr in exprs:
            if isinstance(expr, Aggregation):
                if clause == "where":
                    self._emit(
                        diags, AGGREGATE_IN_WHERE, sql, expr.func,
                        f"aggregate {expr.render()} is not allowed in WHERE; "
                        f"use HAVING",
                    )
                self._check_aggregation(expr, scope, outer, sql, diags)

        resolved = self._resolve_predicate_column(cond, scope, outer, sql, diags)

        if clause == "having" and resolved is not None:
            if resolved.key() not in group_keys:
                self._emit(
                    diags, HAVING_SCOPE, sql, resolved.key(),
                    f"HAVING references {resolved.table}.{resolved.name}, "
                    f"which is neither grouped nor aggregated",
                )

        # type compatibility ---------------------------------------------------
        if isinstance(cond, BinaryCondition):
            right = cond.right
            if resolved is not None and isinstance(right, Literal):
                self._check_literal(resolved, right.value, sql, diags)
            elif resolved is not None and isinstance(right, ColumnRef):
                other = self._resolve(right, scope, outer, sql, diags)
                if other is not None and resolved.is_numeric != other.is_numeric:
                    self._emit(
                        diags, TYPE_MISMATCH, sql, str(cond.left),
                        f"comparison mixes {_describe(resolved)} with "
                        f"{_describe(other)}",
                    )
            elif isinstance(right, ColumnRef):
                self._resolve(right, scope, outer, sql, diags)
            elif isinstance(right, Query):
                self._check_tree(right, sql, diags, outer=scope + outer)
        elif isinstance(cond, InCondition):
            if resolved is not None:
                for value in cond.values:
                    self._check_literal(resolved, value.value, sql, diags)
            if cond.subquery is not None:
                self._check_tree(cond.subquery, sql, diags, outer=scope + outer)
        elif isinstance(cond, BetweenCondition) and resolved is not None:
            self._check_literal(resolved, cond.low.value, sql, diags)
            self._check_literal(resolved, cond.high.value, sql, diags)
        elif isinstance(cond, LikeCondition):
            self._check_like_case(cond, sql, diags)

    def _check_like_case(
        self, cond: LikeCondition, sql: str, diags: list[Diagnostic]
    ) -> None:
        """Capability-gated: LIKE on a case-sensitive backend.

        Gold queries are written against SQLite, whose LIKE folds ASCII
        case; a backend that matches case-sensitively will silently
        drop rows for any pattern containing letters.
        """
        if self.capabilities is None:
            return
        if not getattr(self.capabilities, "like_case_sensitive", False):
            return
        pattern = cond.pattern.value
        if isinstance(pattern, str) and any(ch.isalpha() for ch in pattern):
            self._emit(
                diags, DIALECT_CASE_FOLD, sql, pattern,
                f"LIKE pattern {pattern!r} contains letters but the "
                f"{self.dialect!r} backend matches case-sensitively "
                f"(SQLite folds ASCII case)",
            )

    def _resolve_predicate_column(
        self,
        cond: Condition,
        scope: tuple[str, ...],
        outer: tuple[str, ...],
        sql: str,
        diags: list[Diagnostic],
    ) -> CatalogColumn | None:
        """Resolve the column a predicate constrains, if it is one."""
        expr: Expression | None = None
        if isinstance(cond, BinaryCondition):
            expr = cond.left
        elif isinstance(
            cond, (InCondition, BetweenCondition, LikeCondition, NullCondition)
        ):
            expr = cond.expr
        if isinstance(expr, ColumnRef):
            return self._resolve(expr, scope, outer, sql, diags)
        return None

    # -- expression-level checks ----------------------------------------------

    def _check_aggregation(
        self,
        agg: Aggregation,
        scope: tuple[str, ...],
        outer: tuple[str, ...],
        sql: str,
        diags: list[Diagnostic],
    ) -> None:
        if agg.arg.column == "*":
            if agg.func.lower() not in ("count",):
                self._emit(
                    diags, TYPE_MISMATCH, sql, agg.func,
                    f"{agg.func.upper()}(*) is only meaningful for COUNT",
                )
            return
        resolved = self._resolve(agg.arg, scope, outer, sql, diags)
        if (
            resolved is not None
            and agg.func.lower() in _NUMERIC_AGGREGATES
            and not resolved.is_numeric
        ):
            self._emit(
                diags, TYPE_MISMATCH, sql, str(agg.arg),
                f"{agg.func.upper()} over {_describe(resolved)}",
            )

    def _check_literal(
        self,
        column: CatalogColumn,
        value: object,
        sql: str,
        diags: list[Diagnostic],
    ) -> None:
        if value is None:
            return
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            if not column.is_numeric:
                self._emit(
                    diags, TYPE_MISMATCH, sql, str(value),
                    f"numeric literal {value!r} compared against "
                    f"{_describe(column)}",
                )
            return
        if isinstance(value, str) and column.is_numeric:
            if not _numeric_string(value):
                self._emit(
                    diags, TYPE_MISMATCH, sql, column.name,
                    f"text literal {value!r} compared against "
                    f"{_describe(column)}",
                )

    # -- name resolution -------------------------------------------------------

    def _resolve(
        self,
        col: ColumnRef,
        scope: tuple[str, ...],
        outer: tuple[str, ...],
        sql: str,
        diags: list[Diagnostic],
    ) -> CatalogColumn | None:
        if col.column == "*" and not col.table:
            return None
        if col.table:
            if not self.catalog.has_table(col.table):
                self._emit(
                    diags, UNKNOWN_TABLE, sql, col.table,
                    f"unknown table {col.table!r}",
                )
                return None
            scope_names = {t.lower() for t in scope}
            outer_names = {t.lower() for t in outer}
            if col.table.lower() not in scope_names | outer_names:
                self._emit(
                    diags, TABLE_NOT_IN_SCOPE, sql, str(col),
                    f"{col} references table {col.table!r}, which is not in "
                    f"the FROM clause",
                )
            if col.column == "*":
                return None
            resolved = self.catalog.column(col.table, col.column)
            if resolved is None:
                self._emit(
                    diags, UNKNOWN_COLUMN, sql, str(col),
                    f"table {col.table!r} has no column {col.column!r}",
                )
            return resolved
        matches = self.catalog.tables_with_column(col.column, scope)
        searched: tuple[str, ...] = scope
        if not matches and outer:
            matches = self.catalog.tables_with_column(col.column, outer)
            searched = scope + outer
        if not matches:
            where = ", ".join(searched) if searched else "(empty scope)"
            self._emit(
                diags, UNKNOWN_COLUMN, sql, col.column,
                f"no table in scope ({where}) has a column {col.column!r}",
            )
            return None
        if len(matches) > 1:
            self._emit(
                diags, AMBIGUOUS_COLUMN, sql, col.column,
                f"unqualified column {col.column!r} exists in "
                f"{', '.join(sorted(matches))}; qualify it",
            )
            return None
        return self.catalog.column(matches[0], col.column)

    def _in_group(
        self,
        col: ColumnRef,
        group_keys: set[str],
        scope: tuple[str, ...],
        outer: tuple[str, ...],
    ) -> bool:
        resolved = self._resolve(col, scope, outer, sql="", diags=[])
        if resolved is not None:
            return resolved.key() in group_keys
        return col.column.lower() in group_keys

    def _star_arity(
        self, expr: ColumnRef, scope: tuple[str, ...], scope_known: bool
    ) -> int | None:
        if expr.table:
            if not self.catalog.has_table(expr.table):
                return None
            return len(self.catalog.columns_of(expr.table))
        if not scope_known:
            return None
        return sum(len(self.catalog.columns_of(table)) for table in scope)

    # -- emission --------------------------------------------------------------

    def _emit(
        self,
        diags: list[Diagnostic],
        code: str,
        sql: str,
        identifier: str,
        message: str,
    ) -> None:
        span = identifier_span(sql, identifier) if sql and identifier else None
        diags.append(
            Diagnostic(
                code=code,
                severity=RULE_SEVERITIES[code],
                message=message,
                span=span,
            )
        )


def _describe(column: CatalogColumn) -> str:
    kind = "numeric" if column.is_numeric else f"non-numeric {column.type}"
    return f"{kind} column {column.table}.{column.name}"


def _numeric_string(value: str) -> bool:
    try:
        float(value)
    except ValueError:
        return False
    return True
