"""Static cost estimation for SQL candidates.

Ranks queries by estimated execution cost *without executing them*,
using the cardinality evidence a :class:`~repro.analysis.catalog.SchemaCatalog`
collects when built from a live database: per-table row counts and
per-column distinct-value estimates from the same representative-value
probe the prompt builder uses (§6.3).  The model is a textbook
System-R-style estimate — scan cost plus join fan-out discounted by
join-key cardinality, predicate selectivities, and an ``n·log n`` term
for sorts and grouping — deliberately simple: its only job is to order
*equivalent* candidates so the beam executes the cheapest spelling
first, so relative order matters and absolute numbers do not.
"""

from __future__ import annotations

import math
from typing import Union

from repro.analysis.catalog import CatalogColumn, SchemaCatalog
from repro.errors import SQLSyntaxError
from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    Condition,
    InCondition,
    LikeCondition,
    Literal,
    NullCondition,
    Query,
)
from repro.sqlgen.dialects import parse_dialect_sql

#: Returned for SQL the estimator cannot parse — worse than any real
#: estimate so unparseable candidates sort last within their tier.
UNPARSEABLE_COST = 1e12

#: Fallbacks when the catalog has no evidence for a table/column.
_DEFAULT_ROWS = 1000.0
_DEFAULT_DISTINCT = 20.0

#: Classic selectivity guesses for predicates without value statistics.
_RANGE_SELECTIVITY = 1 / 3
_LIKE_SELECTIVITY = 1 / 4
_NULL_SELECTIVITY = 1 / 10


class CostEstimator:
    """Estimate relative execution cost from catalog statistics."""

    def __init__(self, catalog: SchemaCatalog, dialect: str = "sqlite"):
        self.catalog = catalog
        self.dialect = dialect

    # -- statistics ----------------------------------------------------------

    def _rows(self, table: str) -> float:
        count = self.catalog.table_rows.get(table.lower())
        if count is None:
            return _DEFAULT_ROWS
        return float(max(count, 1))

    def _distinct(self, column: CatalogColumn | None, rows: float) -> float:
        if column is None:
            return min(_DEFAULT_DISTINCT, rows)
        estimate = self.catalog.distinct_estimate(column)
        if estimate is None:
            return min(_DEFAULT_DISTINCT, rows)
        return float(max(min(estimate, rows), 1))

    def _column_of(self, ref: ColumnRef, scope: tuple[str, ...]) -> CatalogColumn | None:
        if ref.column == "*":
            return None
        if ref.table:
            return self.catalog.column(ref.table, ref.column)
        for table in scope:
            found = self.catalog.column(table, ref.column)
            if found is not None:
                return found
        return None

    # -- selectivity ---------------------------------------------------------

    def _selectivity(self, cond: Condition, scope: tuple[str, ...]) -> float:
        if isinstance(cond, BinaryCondition):
            if isinstance(cond.right, Query):
                return _RANGE_SELECTIVITY
            if isinstance(cond.left, (ColumnRef, Aggregation)):
                ref = cond.left.arg if isinstance(cond.left, Aggregation) else cond.left
                column = self._column_of(ref, scope)
                rows = self._rows(column.table) if column is not None else _DEFAULT_ROWS
                if cond.op == "=":
                    return 1.0 / self._distinct(column, rows)
                if cond.op == "!=":
                    return 1.0 - 1.0 / self._distinct(column, rows)
            return _RANGE_SELECTIVITY
        if isinstance(cond, InCondition):
            if cond.subquery is not None:
                selectivity = _RANGE_SELECTIVITY
            else:
                ref = cond.expr if isinstance(cond.expr, ColumnRef) else None
                column = self._column_of(ref, scope) if ref is not None else None
                rows = self._rows(column.table) if column is not None else _DEFAULT_ROWS
                selectivity = min(len(cond.values) / self._distinct(column, rows), 1.0)
            return 1.0 - selectivity if cond.negated else selectivity
        if isinstance(cond, BetweenCondition):
            return _RANGE_SELECTIVITY
        if isinstance(cond, LikeCondition):
            return 1.0 - _LIKE_SELECTIVITY if cond.negated else _LIKE_SELECTIVITY
        if isinstance(cond, NullCondition):
            return 1.0 - _NULL_SELECTIVITY if cond.negated else _NULL_SELECTIVITY
        if isinstance(cond, CompoundCondition):
            parts = [self._selectivity(sub, scope) for sub in cond.conditions]
            if cond.op.upper() == "AND":
                product = 1.0
                for part in parts:
                    product *= part
                return product
            return min(sum(parts), 1.0)
        return 1.0

    def _subquery_cost(self, cond: Condition) -> float:
        cost = 0.0
        if isinstance(cond, BinaryCondition) and isinstance(cond.right, Query):
            cost += self._estimate_simple_chain(cond.right)
        elif isinstance(cond, InCondition) and cond.subquery is not None:
            cost += self._estimate_simple_chain(cond.subquery)
        elif isinstance(cond, CompoundCondition):
            for sub in cond.conditions:
                cost += self._subquery_cost(sub)
        return cost

    # -- estimation ----------------------------------------------------------

    def _estimate_simple(self, query: Query) -> float:
        scope = query.local_tables()
        rows = self._rows(query.from_table)
        cost = rows  # base scan
        for edge in query.joins:
            right_rows = self._rows(edge.table)
            cost += right_rows  # scan/probe of the joined table
            key_column = self._column_of(edge.right, scope) or self._column_of(
                edge.left, scope
            )
            fanout = self._distinct(key_column, right_rows)
            rows = rows * right_rows / fanout
            cost += rows  # intermediate result materialization
        selectivity = 1.0
        if query.where is not None:
            selectivity = self._selectivity(query.where, scope)
            cost += self._subquery_cost(query.where)
        out_rows = max(rows * selectivity, 1.0)
        if query.group_by or query.order_by or query.distinct:
            cost += out_rows * math.log2(out_rows + 1)
        if query.having is not None:
            cost += self._subquery_cost(query.having)
        return cost

    def _estimate_simple_chain(self, query: Query) -> float:
        return sum(self._estimate_simple(arm) for arm in query.compound_chain())

    def estimate(self, query: Query) -> float:
        """Estimated cost of executing ``query`` (relative units)."""
        return self._estimate_simple_chain(query)

    def estimate_sql(self, sql: Union[str, Query]) -> float:
        """Estimated cost of raw SQL (in this estimator's dialect);
        unparseable text sorts last."""
        if isinstance(sql, Query):
            return self.estimate(sql)
        try:
            return self.estimate(parse_dialect_sql(sql, self.dialect))
        except SQLSyntaxError:
            return UNPARSEABLE_COST
