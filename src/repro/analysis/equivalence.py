"""Static query-equivalence engine: canonicalizer and prover.

Execution is the hot-path cost of this repro — the beam executes up to
four candidates per question (§8) and EX evaluation executes both the
prediction and the gold query (§9).  Candidate sets are riddled with
surface-variant duplicates that execute identically (Rajkumar et al.),
so this module provides the static dual of :mod:`repro.analysis.analyzer`:
where the analyzer rejects queries that are *wrong*, the canonicalizer
recognizes queries that are the *same*.

Soundness contract
------------------
:func:`canonicalize` applies only rewrites that provably preserve the
executed result under SQLite semantics (including three-valued NULL
logic), so two queries with equal canonical forms execute identically.
Rewrites that preserve the result *multiset* but may permute row order
(GROUP BY → DISTINCT, set-operation arm sorting) are gated on the
query being order-insensitive (no ORDER BY, no LIMIT) at that level.
:func:`prove_equivalent` returns ``EQUIVALENT`` only for rewrite-closed
equalities; everything it cannot prove is ``UNKNOWN`` (or ``DISTINCT``
when the output shapes provably differ).  The verdict is audited
against real execution on every bundled gold set by
``tests/test_equivalence.py``.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Union

from repro.errors import SQLSyntaxError
from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    Condition,
    Expression,
    InCondition,
    JoinEdge,
    LikeCondition,
    Literal,
    NullCondition,
    OrderItem,
    Query,
    SelectItem,
    identifier_key,
    normalize_number,
    render_expression,
)
from repro.sqlgen.dialects import parse_dialect_sql
from repro.sqlgen.parser import parse_sql
from repro.sqlgen.serializer import serialize, serialize_condition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.catalog import SchemaCatalog

#: Mirror image of each comparison operator under operand swap.
_MIRRORED_OPS = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    ">": "<",
    "<=": ">=",
    ">=": "<=",
}

#: Aggregates for which DISTINCT is a no-op (duplicates cannot change
#: the extremum).  COUNT/SUM/AVG DISTINCT are semantically load-bearing.
_DISTINCT_NOOP_FUNCS = frozenset({"min", "max"})

#: Set operations whose arms commute (EXCEPT does not).
_COMMUTATIVE_SET_OPS = frozenset({"UNION", "INTERSECT"})


class Verdict(enum.Enum):
    """Outcome of :func:`prove_equivalent`.

    Only ``EQUIVALENT`` is load-bearing: callers skip executions on its
    strength, so it must be sound.  ``DISTINCT`` marks a provable
    output-shape difference (projection arity or referenced relation
    set) and is advisory — consumers treat it exactly like ``UNKNOWN``
    and fall back to execution.
    """

    EQUIVALENT = "equivalent"
    DISTINCT = "distinct"
    UNKNOWN = "unknown"


EQUIVALENT = Verdict.EQUIVALENT
DISTINCT = Verdict.DISTINCT
UNKNOWN = Verdict.UNKNOWN


# ---------------------------------------------------------------------------
# Expression / condition canonicalization
# ---------------------------------------------------------------------------


def _canonical_literal(lit: Literal) -> Literal:
    """Normalize numeric payloads so ``3.0`` and ``3`` share identity.

    Sound because SQLite's numeric affinity makes integral REALs and
    INTEGERs compare and join identically, and Python's result
    comparison (`results_match`) already treats ``3.0 == 3``.
    """
    value = lit.value
    if isinstance(value, float) and not isinstance(value, bool) and value.is_integer():
        return Literal(int(value))
    return lit


def _canonical_column(col: ColumnRef) -> ColumnRef:
    return ColumnRef(
        table=identifier_key(col.table) if col.table else "",
        column=col.column if col.column == "*" else identifier_key(col.column),
    )


def _canonical_expression(expr: Expression) -> Expression:
    if isinstance(expr, ColumnRef):
        return _canonical_column(expr)
    if isinstance(expr, Aggregation):
        func = identifier_key(expr.func)
        distinct = expr.distinct and func not in _DISTINCT_NOOP_FUNCS
        return Aggregation(func=func, arg=_canonical_column(expr.arg), distinct=distinct)
    if isinstance(expr, Literal):
        return _canonical_literal(expr)
    raise TypeError(f"not an expression node: {expr!r}")


def _operand_rank(expr: Union[Expression, Query]) -> tuple[int, str]:
    """Orientation key: schema references before literals, then text."""
    if isinstance(expr, Literal):
        return (1, expr.render())
    return (0, render_expression(expr))


def _canonical_binary(cond: BinaryCondition) -> Condition:
    left = _canonical_expression(cond.left)
    op = "!=" if cond.op == "<>" else cond.op
    right: Union[Expression, Query]
    if isinstance(cond.right, Query):
        right = canonicalize(cond.right)
        return BinaryCondition(left=left, op=op, right=right)
    right = _canonical_expression(cond.right)
    # Orient the comparison: schema reference before literal (``5 < x``
    # becomes ``x > 5``), ties broken textually so ``a = b`` and
    # ``b = a`` share one spelling.  ``x OP y`` and ``y MIRROR(OP) x``
    # are the same predicate for every operand pair, NULLs included.
    if _operand_rank(left) > _operand_rank(right):
        left, right = right, left
        op = _MIRRORED_OPS[op]
    return BinaryCondition(left=left, op=op, right=right)


def _literal_sort_key(lit: Literal) -> tuple[int, str]:
    if lit.value is None:
        return (0, "")
    if isinstance(lit.value, str):
        return (2, lit.render())
    return (1, lit.render())


def _canonical_in(cond: InCondition) -> Condition:
    expr = _canonical_expression(cond.expr)
    if cond.subquery is not None:
        return InCondition(
            expr=expr,
            subquery=canonicalize(cond.subquery),
            negated=cond.negated,
        )
    # ``x IN (a, b, a)`` is the disjunction ``x=a OR x=b`` — duplicate
    # removal and reordering preserve it under three-valued logic.
    seen: dict[str, Literal] = {}
    for value in cond.values:
        lit = _canonical_literal(value)
        seen.setdefault(lit.render(), lit)
    values = tuple(sorted(seen.values(), key=_literal_sort_key))
    if len(values) == 1:
        # ``x IN (v)`` is exactly ``x = v`` (both NULL when either side
        # is NULL); the negated form is exactly ``x != v``.
        op = "!=" if cond.negated else "="
        return _canonical_binary(BinaryCondition(left=expr, op=op, right=values[0]))
    return InCondition(expr=expr, values=values, negated=cond.negated)


def _canonical_condition(cond: Condition) -> Condition:
    if isinstance(cond, BinaryCondition):
        return _canonical_binary(cond)
    if isinstance(cond, InCondition):
        return _canonical_in(cond)
    if isinstance(cond, BetweenCondition):
        # ``x BETWEEN lo AND hi`` is defined as ``x >= lo AND x <= hi``,
        # NULL semantics included — rewrite into the range conjunction so
        # both spellings canonicalize identically.
        expr = _canonical_expression(cond.expr)
        return _canonical_condition(
            CompoundCondition(
                op="AND",
                conditions=(
                    BinaryCondition(expr, ">=", _canonical_literal(cond.low)),
                    BinaryCondition(expr, "<=", _canonical_literal(cond.high)),
                ),
            )
        )
    if isinstance(cond, LikeCondition):
        return LikeCondition(
            expr=_canonical_expression(cond.expr),
            pattern=cond.pattern,
            negated=cond.negated,
        )
    if isinstance(cond, NullCondition):
        return NullCondition(expr=_canonical_expression(cond.expr), negated=cond.negated)
    if isinstance(cond, CompoundCondition):
        op = cond.op.upper()
        flattened: list[Condition] = []
        for sub in cond.conditions:
            canon = _canonical_condition(sub)
            if isinstance(canon, CompoundCondition) and canon.op == op:
                flattened.extend(canon.conditions)  # associativity
            else:
                flattened.append(canon)
        # Commutativity + idempotence: sort by rendered text, drop exact
        # duplicates (``p AND p = p`` holds in three-valued logic too).
        unique: dict[str, Condition] = {}
        for sub in flattened:
            unique.setdefault(serialize_condition(sub, parenthesize=True), sub)
        ordered = [unique[key] for key in sorted(unique)]
        if len(ordered) == 1:
            return ordered[0]
        return CompoundCondition(op=op, conditions=tuple(ordered))
    raise TypeError(f"not a condition node: {cond!r}")


# ---------------------------------------------------------------------------
# Query canonicalization
# ---------------------------------------------------------------------------


def _erase_aliases(query: Query) -> Query:
    """Drop output aliases that only name columns, substituting ORDER BY uses.

    A SELECT alias affects output column *names*, never values, so
    dropping an unreferenced alias is result-preserving.  A bare ORDER
    BY identifier matching an alias resolves to that output column in
    SQLite (output names take precedence there), so substituting the
    aliased expression is exact.  Aliases referenced bare anywhere else
    (WHERE/HAVING/GROUP BY, where SQLite's resolution rules are murkier)
    are conservatively kept.
    """
    aliased = {
        identifier_key(item.alias): item.expr
        for item in query.select_items
        if item.alias
    }
    if not aliased:
        return query

    blockers: set[str] = set()

    def visit_expr(expr: Union[Expression, Query]) -> None:
        if isinstance(expr, ColumnRef) and not expr.table and expr.column != "*":
            blockers.add(identifier_key(expr.column))
        elif isinstance(expr, Aggregation):
            visit_expr(expr.arg)

    def visit_cond(cond: Condition) -> None:
        if isinstance(cond, BinaryCondition):
            visit_expr(cond.left)
            if not isinstance(cond.right, Query):
                visit_expr(cond.right)
        elif isinstance(cond, (InCondition, BetweenCondition, LikeCondition, NullCondition)):
            visit_expr(cond.expr)
        elif isinstance(cond, CompoundCondition):
            for sub in cond.conditions:
                visit_cond(sub)

    for cond in (query.where, query.having):
        if cond is not None:
            visit_cond(cond)
    for col in query.group_by:
        visit_expr(col)

    order_by = tuple(
        OrderItem(
            expr=aliased[identifier_key(item.expr.column)],
            descending=item.descending,
        )
        if (
            isinstance(item.expr, ColumnRef)
            and not item.expr.table
            and item.expr.column != "*"
            and identifier_key(item.expr.column) in aliased
            and identifier_key(item.expr.column) not in blockers
        )
        else item
        for item in query.order_by
    )
    select_items = tuple(
        SelectItem(expr=item.expr, alias="")
        if item.alias and identifier_key(item.alias) not in blockers
        else item
        for item in query.select_items
    )
    return Query(
        select_items=select_items,
        from_table=query.from_table,
        joins=query.joins,
        where=query.where,
        group_by=query.group_by,
        having=query.having,
        order_by=order_by,
        limit=query.limit,
        distinct=query.distinct,
        compound_op=query.compound_op,
        compound_query=query.compound_query,
    )


def _has_aggregate(query: Query) -> bool:
    return any(isinstance(item.expr, Aggregation) for item in query.select_items)


def _canonical_simple(query: Query) -> Query:
    """Canonicalize one SELECT level (no compound handling)."""
    query = _erase_aliases(query)

    select_items = tuple(
        SelectItem(expr=_canonical_expression(item.expr), alias=item.alias)
        for item in query.select_items
    )
    joins = tuple(
        # Equality commutes, so orient every join edge deterministically.
        JoinEdge(table=identifier_key(edge.table), left=left, right=right)
        if left.key() <= right.key()
        else JoinEdge(table=identifier_key(edge.table), left=right, right=left)
        for edge in query.joins
        for left, right in [
            (_canonical_column(edge.left), _canonical_column(edge.right))
        ]
    )
    where = _canonical_condition(query.where) if query.where is not None else None
    having = _canonical_condition(query.having) if query.having is not None else None
    group_by = tuple(_canonical_column(col) for col in query.group_by)

    # ORDER BY: a later key whose expression already appeared can never
    # break a tie (equal primary keys imply the duplicate is equal too),
    # so it is dead and dropped.  Key order itself is significant.
    order_by: list[OrderItem] = []
    seen_keys: set[str] = set()
    for item in query.order_by:
        expr = _canonical_expression(item.expr)
        rendered = render_expression(expr)
        if rendered in seen_keys:
            continue
        seen_keys.add(rendered)
        order_by.append(OrderItem(expr=expr, descending=item.descending))

    distinct = query.distinct
    # SELECT DISTINCT over an aggregate-only, ungrouped projection is a
    # no-op: the result is a single row.
    if distinct and not group_by and select_items and all(
        isinstance(item.expr, Aggregation) for item in select_items
    ):
        distinct = False

    order_sensitive = bool(order_by) or query.limit is not None
    if group_by and not order_sensitive:
        # Group keys are a set; duplicates are redundant and order only
        # affects (unspecified) output order, which nothing downstream
        # may rely on once ORDER BY/LIMIT are absent.
        group_by = tuple(
            sorted({col.key(): col for col in group_by}.values(), key=ColumnRef.key)
        )
        # ``SELECT a, b FROM t GROUP BY a, b`` with no HAVING and no
        # aggregates anywhere is exactly ``SELECT DISTINCT a, b FROM t``.
        plain_cols = [
            item.expr for item in select_items if isinstance(item.expr, ColumnRef)
        ]
        if (
            having is None
            and len(plain_cols) == len(select_items)
            and all(col.column != "*" for col in plain_cols)
            and {col.key() for col in plain_cols} == {col.key() for col in group_by}
        ):
            group_by = ()
            distinct = True

    return Query(
        select_items=select_items,
        from_table=identifier_key(query.from_table),
        joins=joins,
        where=where,
        group_by=group_by,
        having=having,
        order_by=tuple(order_by),
        limit=query.limit,
        distinct=distinct,
        compound_op="",
        compound_query=None,
    )


def canonicalize(query: Query) -> Query:
    """Rewrite ``query`` into its canonical, execution-equivalent form.

    Idempotent: ``canonicalize(canonicalize(q)) == canonicalize(q)``.
    The result serializes to valid SQL of the same subset.
    """
    arms = [_canonical_simple(arm) for arm in query.compound_chain()]
    ops = [arm.compound_op.upper() for arm in query.compound_chain()][:-1]

    if len(arms) > 1 and all(op == ops[0] for op in ops):
        op = ops[0]
        order_sensitive = any(
            arm.order_by or arm.limit is not None for arm in arms
        )
        if op in _COMMUTATIVE_SET_OPS and not order_sensitive:
            # UNION/INTERSECT are commutative, associative and
            # idempotent set operations (both emit distinct rows), so
            # arms sort and exact duplicates collapse.
            unique = {serialize(arm): arm for arm in arms}
            arms = [unique[key] for key in sorted(unique)]
            if len(arms) == 1:
                # ``q UNION q`` (or INTERSECT) is the distinct rows of q.
                lone = arms[0]
                return _canonical_simple(
                    Query(
                        select_items=lone.select_items,
                        from_table=lone.from_table,
                        joins=lone.joins,
                        where=lone.where,
                        group_by=lone.group_by,
                        having=lone.having,
                        order_by=lone.order_by,
                        limit=lone.limit,
                        distinct=True,
                    )
                )

    result = arms[-1]
    for arm, op in zip(reversed(arms[:-1]), reversed(ops)):
        result = Query(
            select_items=arm.select_items,
            from_table=arm.from_table,
            joins=arm.joins,
            where=arm.where,
            group_by=arm.group_by,
            having=arm.having,
            order_by=arm.order_by,
            limit=arm.limit,
            distinct=arm.distinct,
            compound_op=op,
            compound_query=result,
        )
    return result


def canonical_key(query: Query) -> str:
    """Stable text identity of a query's canonical form."""
    return serialize(canonicalize(query))


def canonical_key_sql(sql: str, dialect: str = "sqlite") -> str:
    """Canonical key for raw SQL text written in ``dialect``.

    The key itself is always rendered in the canonical SQLite dialect,
    so equivalent queries spelled in *different* dialects share one
    key.  Unparseable SQL (outside the sqlgen subset) falls back to
    whitespace normalization with original casing kept — string
    literals are case-sensitive, so the fallback must not merge texts
    that could execute differently.
    """
    try:
        return canonical_key(parse_dialect_sql(sql, dialect))
    except SQLSyntaxError:
        return " ".join(sql.split()).rstrip(";").rstrip()


# ---------------------------------------------------------------------------
# Equivalence prover
# ---------------------------------------------------------------------------


def _coerce(query: Union[str, Query], dialect: str = "sqlite") -> Optional[Query]:
    if isinstance(query, Query):
        return query
    try:
        return parse_dialect_sql(query, dialect)
    except SQLSyntaxError:
        return None


def _select_arity(query: Query, catalog: Optional["SchemaCatalog"]) -> Optional[int]:
    """Output column count, expanding stars via the catalog when known."""
    arity = 0
    for item in query.select_items:
        expr = item.expr
        if isinstance(expr, ColumnRef) and expr.column == "*":
            if catalog is None:
                return None
            tables = [expr.table] if expr.table else list(query.local_tables())
            for table in tables:
                if not catalog.has_table(table):
                    return None
                arity += len(catalog.columns_of(table))
        else:
            arity += 1
    return arity


def prove_equivalent(
    a: Union[str, Query],
    b: Union[str, Query],
    catalog: Optional["SchemaCatalog"] = None,
    dialect: str = "sqlite",
) -> Verdict:
    """Statically compare two queries written in ``dialect``.

    ``EQUIVALENT`` is sound: it is returned only when the two queries
    share a canonical form (or identical text), so executing either
    yields the other's result.  ``DISTINCT`` flags provable output-shape
    differences (projection arity under star expansion, referenced
    relation sets); everything else is ``UNKNOWN``.
    """
    if isinstance(a, str) and isinstance(b, str):
        if " ".join(a.split()).rstrip(";").rstrip() == " ".join(b.split()).rstrip(";").rstrip():
            return Verdict.EQUIVALENT
    qa, qb = _coerce(a, dialect), _coerce(b, dialect)
    if qa is None or qb is None:
        return Verdict.UNKNOWN
    ca, cb = canonicalize(qa), canonicalize(qb)
    if ca == cb:
        return Verdict.EQUIVALENT
    arity_a, arity_b = _select_arity(ca, catalog), _select_arity(cb, catalog)
    if arity_a is not None and arity_b is not None and arity_a != arity_b:
        return Verdict.DISTINCT
    if qa.tables_used() != qb.tables_used():
        return Verdict.DISTINCT
    return Verdict.UNKNOWN
