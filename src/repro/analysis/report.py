"""Dataset-level lint audits: run the analyzer over gold SQL.

Powers the ``repro lint`` CLI subcommand and the golden test that keeps
every bundled benchmark's gold queries clean of error-tier diagnostics
(schema/AST drift shows up here before it shows up as mysteriously
falling EX).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.analyzer import SemanticAnalyzer
from repro.analysis.catalog import SchemaCatalog
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.datasets.base import Text2SQLDataset


@dataclass(frozen=True)
class LintFinding:
    """All diagnostics for one gold example."""

    split: str
    index: int
    db_id: str
    sql: str
    diagnostics: tuple[Diagnostic, ...]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)


@dataclass
class LintReport:
    """Aggregate lint results over one dataset."""

    dataset: str
    n_examples: int = 0
    findings: list[LintFinding] = field(default_factory=list)
    rule_counts: Counter = field(default_factory=Counter)

    @property
    def n_errors(self) -> int:
        return sum(
            1
            for finding in self.findings
            for d in finding.diagnostics
            if d.severity is Severity.ERROR
        )

    @property
    def n_warnings(self) -> int:
        return sum(
            1
            for finding in self.findings
            for d in finding.diagnostics
            if d.severity is Severity.WARNING
        )

    @property
    def error_findings(self) -> list[LintFinding]:
        return [finding for finding in self.findings if finding.has_errors]

    def as_row(self) -> dict[str, object]:
        return {
            "dataset": self.dataset,
            "queries": self.n_examples,
            "errors": self.n_errors,
            "warnings": self.n_warnings,
            "dirty queries": len(self.error_findings),
        }


def lint_dataset(
    dataset: Text2SQLDataset, splits: tuple[str, ...] = ("train", "dev")
) -> LintReport:
    """Lint every gold query of ``dataset`` against its database schema."""
    report = LintReport(dataset=dataset.name)
    analyzers: dict[str, SemanticAnalyzer] = {}
    for split in splits:
        examples = dataset.train if split == "train" else dataset.dev
        for index, example in enumerate(examples):
            analyzer = analyzers.get(example.db_id)
            if analyzer is None:
                database = dataset.database_of(example)
                analyzer = analyzers[example.db_id] = SemanticAnalyzer(
                    SchemaCatalog.from_database(database)
                )
            diagnostics = analyzer.analyze_sql(example.sql)
            report.n_examples += 1
            if diagnostics:
                report.findings.append(
                    LintFinding(
                        split=split,
                        index=index,
                        db_id=example.db_id,
                        sql=example.sql,
                        diagnostics=tuple(diagnostics),
                    )
                )
                for diagnostic in diagnostics:
                    report.rule_counts[diagnostic.code] += 1
    return report


def format_lint_report(report: LintReport, max_findings: int = 10) -> str:
    """Human-readable audit of one dataset's lint results."""
    lines = [
        f"{report.dataset}: {report.n_examples} gold queries, "
        f"{report.n_errors} errors / {report.n_warnings} warnings"
    ]
    if report.rule_counts:
        per_rule = ", ".join(
            f"{code}={count}" for code, count in sorted(report.rule_counts.items())
        )
        lines.append(f"  per rule: {per_rule}")
    for finding in report.error_findings[:max_findings]:
        lines.append(
            f"  {finding.split}[{finding.index}] db={finding.db_id}: {finding.sql}"
        )
        for diagnostic in finding.diagnostics:
            lines.append(f"    {diagnostic.render()}")
    remaining = len(report.error_findings) - max_findings
    if remaining > 0:
        lines.append(f"  ... and {remaining} more dirty queries")
    return "\n".join(lines)
