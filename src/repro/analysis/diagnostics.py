"""Diagnostic types and rule registry for the SQL semantic analyzer.

Every finding the analyzer emits is a :class:`Diagnostic` carrying a
stable rule code, a severity tier, a human-readable message and (when
the SQL source text is available) a character :class:`~repro.sqlgen.spans.Span`.

Severity tiers:

- ``ERROR`` — the query will either fail to execute or silently return
  wrong results (hallucinated schema, aggregate misuse, incompatible
  types).  Error-tier candidates are demoted by the beam gate and
  rejected from the augmentation pool.
- ``WARNING`` — suspicious but possibly intentional (a join that
  follows no declared PK/FK edge, SQL outside the parseable subset).
  Warnings never gate anything; they are reported for audits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.sqlgen.spans import Span


class Severity(enum.IntEnum):
    """Diagnostic severity tier; higher is worse."""

    WARNING = 1
    ERROR = 2


# -- rule codes ---------------------------------------------------------------

#: A referenced table does not exist in the catalog.
UNKNOWN_TABLE = "unknown-table"
#: A referenced column does not exist in its (resolved) table.
UNKNOWN_COLUMN = "unknown-column"
#: A qualified reference names a table that is not in the FROM scope.
TABLE_NOT_IN_SCOPE = "table-not-in-scope"
#: An unqualified column exists in several tables of the FROM scope.
AMBIGUOUS_COLUMN = "ambiguous-column"
#: A comparison mixes a numeric column with a non-numeric value (or
#: vice versa), judged from declared types plus representative values.
TYPE_MISMATCH = "type-mismatch"
#: An aggregate function appears inside a WHERE predicate.
AGGREGATE_IN_WHERE = "aggregate-in-where"
#: A bare (non-aggregated) projected column is missing from GROUP BY.
UNGROUPED_COLUMN = "ungrouped-column"
#: Set-operation arms project different numbers of columns.
SET_OP_ARITY = "set-op-arity"
#: HAVING references a bare column that is neither grouped nor aggregated.
HAVING_SCOPE = "having-scope"
#: ORDER BY of a grouped query references an out-of-scope bare column.
ORDER_BY_SCOPE = "order-by-scope"
#: A join equality does not follow any declared PK/FK edge.
JOIN_NO_FK = "join-no-fk"
#: The SQL is outside the parseable subset; nothing could be checked.
PARSE_ERROR = "parse-error"
#: A LIKE pattern with letters on a backend whose LIKE is
#: case-sensitive — the match set may differ from SQLite's case-folded
#: semantics the gold sets assume.
DIALECT_CASE_FOLD = "dialect-case-fold"

#: Default severity per rule code, in reporting order.
RULE_SEVERITIES: dict[str, Severity] = {
    UNKNOWN_TABLE: Severity.ERROR,
    UNKNOWN_COLUMN: Severity.ERROR,
    TABLE_NOT_IN_SCOPE: Severity.ERROR,
    AMBIGUOUS_COLUMN: Severity.ERROR,
    TYPE_MISMATCH: Severity.ERROR,
    AGGREGATE_IN_WHERE: Severity.ERROR,
    UNGROUPED_COLUMN: Severity.ERROR,
    SET_OP_ARITY: Severity.ERROR,
    HAVING_SCOPE: Severity.ERROR,
    ORDER_BY_SCOPE: Severity.ERROR,
    JOIN_NO_FK: Severity.WARNING,
    PARSE_ERROR: Severity.WARNING,
    DIALECT_CASE_FOLD: Severity.WARNING,
}

#: All rule codes in reporting order.
RULE_CODES = tuple(RULE_SEVERITIES)


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    span: Span | None = None

    def render(self) -> str:
        where = f" @{self.span.start}:{self.span.end}" if self.span else ""
        return f"{self.severity.name.lower()}[{self.code}]{where}: {self.message}"


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any diagnostic is error-tier."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def error_count(diagnostics: Iterable[Diagnostic]) -> int:
    return sum(1 for d in diagnostics if d.severity is Severity.ERROR)
