"""Schema-aware SQL semantic analysis.

A static pre-execution gate for generated SQL: the analyzer walks the
:mod:`repro.sqlgen` AST against a :class:`SchemaCatalog` built from
database metadata and emits structured :class:`Diagnostic` findings
(hallucinated tables/columns, ambiguous references, type-incompatible
comparisons, aggregate misuse, set-operation arity, scope violations,
off-FK joins).  Consumers:

- the execution-guided beam (:mod:`repro.core.parser`) demotes
  error-tier candidates below clean ones, saving execution round-trips;
- the eval harness counts ``prediction_semantic_error`` failures and
  per-rule diagnostics;
- the augmentation pipeline rejects dirty synthetic SQL;
- ``repro lint`` audits any benchmark's gold queries.

The static *equivalence* engine (:mod:`repro.analysis.equivalence`,
:mod:`repro.analysis.cost`) is the dual gate: it recognizes when two
candidates are provably the same query, so the beam executes one
representative per equivalence class (cheapest first, per the cost
estimator), the eval harness skips EX executions for predictions
provably equivalent to gold, the augmentation pipeline drops
canonical-duplicate synthetic pairs, and ``repro equiv`` reports
duplicate ratios for any benchmark.
"""

from repro.analysis.analyzer import SemanticAnalyzer
from repro.analysis.catalog import CatalogColumn, SchemaCatalog
from repro.analysis.cost import CostEstimator
from repro.analysis.equivalence import (
    Verdict,
    canonical_key,
    canonical_key_sql,
    canonicalize,
    prove_equivalent,
)
from repro.analysis.diagnostics import (
    RULE_CODES,
    RULE_SEVERITIES,
    Diagnostic,
    Severity,
    error_count,
    has_errors,
)
from repro.analysis.report import (
    LintFinding,
    LintReport,
    format_lint_report,
    lint_dataset,
)

__all__ = [
    "CatalogColumn",
    "CostEstimator",
    "Diagnostic",
    "LintFinding",
    "LintReport",
    "RULE_CODES",
    "RULE_SEVERITIES",
    "SchemaCatalog",
    "SemanticAnalyzer",
    "Severity",
    "Verdict",
    "canonical_key",
    "canonical_key_sql",
    "canonicalize",
    "error_count",
    "format_lint_report",
    "has_errors",
    "lint_dataset",
    "prove_equivalent",
]
