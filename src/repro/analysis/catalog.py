"""Schema catalog: the name/type/key universe the analyzer checks against.

A :class:`SchemaCatalog` is a read-optimized view of one database's
:class:`~repro.db.schema.Schema` — case-insensitive table/column lookup,
column types, PK flags, and the set of declared PK/FK join edges.  When
built from a live :class:`~repro.db.database.Database` it additionally
probes representative values (the same ``SELECT DISTINCT … LIMIT k``
probe the prompt builder uses, §6.3) so that TEXT columns which actually
store numbers are not flagged for numeric comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.db.schema import Schema
from repro.errors import ExecutionError

#: Declared types treated as numeric for comparison compatibility.
NUMERIC_TYPES = frozenset({"INTEGER", "REAL"})


@dataclass(frozen=True)
class CatalogColumn:
    """One column as the analyzer sees it."""

    table: str
    name: str
    type: str
    is_primary: bool = False
    #: True for TEXT/DATE columns whose sampled values all parse as
    #: numbers — numeric comparisons against them are legitimate.
    numeric_like: bool = False
    #: Distinct values observed by the representative-value probe
    #: (``SELECT DISTINCT … LIMIT k``); 0 means never probed.  When the
    #: probe returns fewer than ``k`` values that IS the true distinct
    #: count — the cardinality evidence the cost estimator runs on.
    n_distinct: int = 0

    def key(self) -> str:
        return f"{self.table.lower()}.{self.name.lower()}"

    @property
    def is_numeric(self) -> bool:
        return self.type.upper() in NUMERIC_TYPES or self.numeric_like


class SchemaCatalog:
    """Case-insensitive lookup structure over one schema."""

    def __init__(
        self,
        schema: Schema,
        columns: dict[str, dict[str, CatalogColumn]],
        table_rows: dict[str, int] | None = None,
        sample_k: int = 5,
    ):
        self.schema = schema
        #: lower table name -> lower column name -> CatalogColumn
        self._columns = columns
        #: lower table name -> row count (only when built from a live DB)
        self.table_rows: dict[str, int] = dict(table_rows or {})
        #: probe width used for representative values / distinct evidence
        self.sample_k = sample_k
        #: lower real table names
        self._tables = {table.name.lower(): table.name for table in schema.tables}
        #: unordered {src_key, dst_key} pairs of declared FK edges.
        self.fk_pairs: set[frozenset[str]] = {
            frozenset(
                {
                    f"{fk.src_table.lower()}.{fk.src_column.lower()}",
                    f"{fk.dst_table.lower()}.{fk.dst_column.lower()}",
                }
            )
            for fk in schema.foreign_keys
        }

    # -- construction --------------------------------------------------------

    @classmethod
    def from_schema(cls, schema: Schema) -> "SchemaCatalog":
        """Catalog from structural metadata only (no value probing)."""
        return cls(schema, _columns_of(schema, database=None))

    @classmethod
    def from_database(cls, database: Database, sample_k: int = 5) -> "SchemaCatalog":
        """Catalog enriched with representative-value type evidence."""
        return cls(
            database.schema,
            _columns_of(database.schema, database, sample_k),
            table_rows=_table_rows_of(database),
            sample_k=sample_k,
        )

    # -- lookup --------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_name(self, name: str) -> str:
        """Real casing of a table name."""
        return self._tables[name.lower()]

    def column(self, table: str, column: str) -> CatalogColumn | None:
        return self._columns.get(table.lower(), {}).get(column.lower())

    def columns_of(self, table: str) -> tuple[CatalogColumn, ...]:
        return tuple(self._columns.get(table.lower(), {}).values())

    def tables_with_column(
        self, column: str, scope: tuple[str, ...] | None = None
    ) -> list[str]:
        """Tables (from ``scope``, or anywhere) containing ``column``."""
        names = (
            [t.lower() for t in scope] if scope is not None else list(self._tables)
        )
        lowered = column.lower()
        return [name for name in names if lowered in self._columns.get(name, {})]

    def has_fk_edge(self, left_key: str, right_key: str) -> bool:
        """Is ``left = right`` a declared FK edge (either direction)?"""
        return frozenset({left_key.lower(), right_key.lower()}) in self.fk_pairs

    def distinct_estimate(self, column: CatalogColumn) -> int | None:
        """Estimated distinct-value count for ``column``.

        When the ``LIMIT k`` probe returned fewer than ``k`` values the
        observation is exhaustive and exact.  A saturated probe only
        proves ``>= k`` distinct values, so fall back to the classic
        half-the-rows guess.  ``None`` means no evidence at all.
        """
        if column.n_distinct <= 0:
            return None
        if column.n_distinct < self.sample_k:
            return column.n_distinct
        rows = self.table_rows.get(column.table.lower())
        if rows is None:
            return column.n_distinct
        return max(rows // 2, column.n_distinct)


def _columns_of(
    schema: Schema, database: Database | None, sample_k: int = 5
) -> dict[str, dict[str, CatalogColumn]]:
    columns: dict[str, dict[str, CatalogColumn]] = {}
    for table in schema.tables:
        per_table: dict[str, CatalogColumn] = {}
        for column in table.columns:
            numeric_like = False
            n_distinct = 0
            if database is not None:
                values = _probe_values(database, table.name, column.name, sample_k)
                n_distinct = len(values)
                if column.type.upper() not in NUMERIC_TYPES:
                    numeric_like = bool(values) and all(
                        _parses_as_number(value) for value in values
                    )
            per_table[column.name.lower()] = CatalogColumn(
                table=table.name,
                name=column.name,
                type=column.type.upper(),
                is_primary=column.is_primary,
                numeric_like=numeric_like,
                n_distinct=n_distinct,
            )
        columns[table.name.lower()] = per_table
    return columns


def _probe_values(
    database: Database, table: str, column: str, sample_k: int
) -> list[object]:
    try:
        return database.representative_values(table, column, k=sample_k)
    except ExecutionError:
        return []


def _table_rows_of(database: Database) -> dict[str, int]:
    rows: dict[str, int] = {}
    for table in database.schema.tables:
        try:
            rows[table.name.lower()] = database.row_count(table.name)
        except ExecutionError:
            continue
    return rows


def _parses_as_number(value: object) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    if isinstance(value, str):
        try:
            float(value)
        except ValueError:
            return False
        return True
    return False
