"""Model tier registry.

The paper releases CodeS at 1B/3B/7B/15B parameters and compares it to
StarCoder(-Base/-Plus), CodeGen(2) and Llama-2 checkpoints.  Offline,
"size" maps onto capacity knobs that genuinely change behaviour:

- ``embed_dim`` — retrieval-embedding width (fewer hash collisions as
  it grows, so sharper demonstration/skeleton retrieval);
- ``ngram_order`` — context length of the SQL ranking prior;
- ``skeleton_capacity`` — how many SQL skeletons the model retains from
  pre-training (its "SQL knowledge");
- ``slot_depth`` — how many alternatives the parser explores per slot
  when instantiating a skeleton (search breadth);
- ``max_context_chars`` — prompt budget (CodeS-15B has the *smaller*
  context, 6,144 vs 8,192 tokens, exactly as in Table 1).

``family`` and ``incremental`` select the pre-training recipe from
:mod:`repro.lm.pretrain`: CodeS tiers are StarCoder tiers continued on
the SQL-centric corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import CheckpointError


@dataclass(frozen=True)
class ModelConfig:
    """Capacity and provenance knobs of one model tier."""

    name: str
    family: str  # "starcoder" | "codegen" | "llama"
    incremental: bool  # True for CodeS (SQL-centric continued pre-training)
    params_billions: float
    embed_dim: int
    ngram_order: int
    skeleton_capacity: int
    slot_depth: int
    beam_size: int = 4
    max_context_chars: int = 8_192
    seed: int = 0

    def __post_init__(self) -> None:
        positive = (
            self.embed_dim, self.ngram_order, self.skeleton_capacity,
            self.slot_depth, self.beam_size, self.max_context_chars,
        )
        if min(positive) <= 0:
            raise CheckpointError(
                f"model config {self.name!r} has non-positive capacity knobs"
            )

    def derived(self, **overrides) -> "ModelConfig":
        """Copy with overridden fields (ablation helper)."""
        return replace(self, **overrides)


def _tier(
    name: str,
    family: str,
    incremental: bool,
    params: float,
    level: int,
    context: int = 8_192,
) -> ModelConfig:
    """Capacity level 0..3 maps to the knob schedule below."""
    embed_dims = (48, 96, 192, 320)
    orders = (2, 3, 4, 4)
    capacities = (40, 120, 400, 1200)
    depths = (2, 3, 4, 5)
    return ModelConfig(
        name=name,
        family=family,
        incremental=incremental,
        params_billions=params,
        embed_dim=embed_dims[level],
        ngram_order=orders[level],
        skeleton_capacity=capacities[level],
        slot_depth=depths[level],
        max_context_chars=context,
    )


MODEL_REGISTRY: dict[str, ModelConfig] = {
    config.name: config
    for config in (
        # CodeS — incrementally pre-trained StarCoder tiers (Table 1).
        _tier("codes-1b", "starcoder", True, 1.0, 0),
        _tier("codes-3b", "starcoder", True, 3.0, 1),
        _tier("codes-7b", "starcoder", True, 7.0, 2),
        _tier("codes-15b", "starcoder", True, 15.0, 3, context=6_144),
        # StarCoder family (base models before incremental pre-training).
        _tier("starcoderbase-1b", "starcoder", False, 1.0, 0),
        _tier("starcoderbase-3b", "starcoder", False, 3.0, 1),
        _tier("starcoderbase-7b", "starcoder", False, 7.0, 2),
        _tier("starcoderbase-15b", "starcoder", False, 15.0, 3, context=6_144),
        _tier("starcoder-15b", "starcoder", False, 15.0, 3, context=6_144),
        _tier("starcoderplus-15b", "starcoder", False, 15.0, 3, context=6_144),
        # CodeGen family.  Capability levels reflect *SQL-specific*
        # ability, which depends on pre-training exposure as well as raw
        # size (the paper's Table 4: CodeGen-16B trails StarCoder-7B).
        _tier("codegen-mono-6b", "codegen", False, 6.0, 1),
        _tier("codegen2-7b", "codegen", False, 7.0, 1),
        _tier("codegen-mono-16b", "codegen", False, 16.0, 2),
        _tier("codegen2-16b", "codegen", False, 16.0, 2),
        # Llama-2 family: strong general LMs, little SQL exposure.
        _tier("llama2-7b", "llama", False, 7.0, 1),
        _tier("llama2-13b", "llama", False, 13.0, 2),
    )
}

#: The four CodeS tiers, smallest to largest.
CODES_TIERS = ("codes-1b", "codes-3b", "codes-7b", "codes-15b")


def get_model_config(name: str) -> ModelConfig:
    """Look up a registered tier by name."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        raise CheckpointError(
            f"unknown model {name!r}; known: {sorted(MODEL_REGISTRY)}"
        ) from None
