"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming mistakes such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SQLSyntaxError(ReproError):
    """Raised when a SQL string cannot be tokenized or parsed."""

    def __init__(self, message: str, sql: str = "", position: int = -1):
        super().__init__(message)
        self.sql = sql
        self.position = position


class SchemaError(ReproError):
    """Raised for malformed or inconsistent database schemas."""


class ExecutionError(ReproError):
    """Raised when executing a SQL query against a database fails."""


class DeadlineExceededError(ExecutionError, TimeoutError):
    """Raised when a wall-clock deadline expires mid-operation.

    Subclasses :class:`ExecutionError` (timeouts are a kind of execution
    failure, so legacy ``except ExecutionError`` paths keep working) and
    the builtin :class:`TimeoutError` (so generic timeout handling sees
    it too).
    """

    def __init__(self, message: str, elapsed_s: float = 0.0, budget_s: float = 0.0):
        super().__init__(message)
        self.elapsed_s = elapsed_s
        self.budget_s = budget_s


class CircuitOpenError(ReproError):
    """Raised when a circuit breaker refuses a call in its open state."""


class PromptBudgetError(ReproError):
    """Raised when a prompt cannot fit the model's context budget."""


class TrainingError(ReproError):
    """Raised when a training routine receives unusable inputs."""


class GenerationError(ReproError):
    """Raised when the parser cannot produce any SQL candidate."""


class ProviderError(ReproError):
    """Base class for LM provider call failures (repro.lm.providers)."""


class ProviderFaultError(ProviderError):
    """Raised when a provider call fails outright (5xx-style fault).

    ``latency_s`` is the simulated time the failing call occupied (a
    remote fault still costs a network round-trip).
    """

    def __init__(self, message: str, latency_s: float = 0.0):
        super().__init__(message)
        self.latency_s = latency_s


class ProviderTimeoutError(ProviderError, TimeoutError):
    """Raised when a provider call exceeds its simulated timeout.

    ``latency_s`` reports how long the call occupied before timing out
    — the router charges that time to the clock even though the call
    produced nothing.
    """

    def __init__(self, message: str, latency_s: float = 0.0):
        super().__init__(message)
        self.latency_s = latency_s


class AllProvidersOpenError(ProviderError):
    """Raised when every provider's circuit breaker rejects a call.

    The serving layer maps this to the ``ProviderShed`` outcome: the
    request never reached a model, so it is shed rather than failed.
    """


class ServingError(ReproError):
    """Raised on serving-layer lifecycle misuse (e.g. double start)."""


class DatasetError(ReproError):
    """Raised when a benchmark dataset cannot be built or loaded."""


class CheckpointError(ReproError):
    """Raised when a model checkpoint name or file is invalid."""
