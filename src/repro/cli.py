"""Command-line interface.

Subcommands::

    repro datasets                         # list the available benchmarks
    repro eval --dataset spider --model codes-7b [--mode sft|fewshot|zeroshot]
    repro ask --dataset bank_financials --question "How many clients..."
    repro trace --dataset bank_financials --question "How many clients..."
    repro augment --domain bank_financials --out pairs.json
    repro lint --dataset all                # audit gold SQL semantically
    repro equiv --dataset spider            # duplicate-ratio / verdict report
    repro serve --dataset spider < requests.jsonl   # one-shot JSONL serving
    repro serve --workers 4 --transport process < requests.jsonl  # sharded
    repro shardmap --dataset spider --workers 4 --target-workers 6
    repro loadgen --dataset spider --seed 7 # seeded open-loop load report
    repro conformance                       # cross-dialect backend audit
    repro check                             # static analysis over src/repro
    repro check --explain STAGE001          # show one rule's documentation

Everything runs offline and deterministically.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

from repro.analysis import (
    SchemaCatalog,
    Verdict,
    canonical_key_sql,
    format_lint_report,
    prove_equivalent,
)
from repro.augment import augment_domain
from repro.config import MODEL_REGISTRY
from repro.core import CodeSParser, DemonstrationRetriever
from repro.datasets import (
    build_aminer_simplified,
    build_bank_financials,
    build_bird,
    build_dr_spider,
    build_spider,
    build_spider_variant,
)
from repro.datasets.drspider import all_perturbation_names
from repro.errors import DeadlineExceededError, ReproError
from repro.eval.harness import evaluate_parser, pair_samples
from repro.eval.reporting import (
    format_failure_report,
    format_serving_report,
    format_stage_report,
    format_table,
)
from repro.reliability import Deadline, FakeClock, RetryPolicy
from repro.serving import (
    Completed,
    InlineWorkerHandle,
    ProcessWorkerHandle,
    Server,
    ServerConfig,
    ServeRequest,
    ServiceModel,
    ShardingConfig,
    ShardMap,
    ShardRouter,
    Shed,
    WorkerPool,
    default_worker_ids,
    poisson_workload,
    run_loadgen,
)

_BUILDERS = {
    "spider": build_spider,
    "bird": build_bird,
    "spider-syn": lambda: build_spider_variant("spider-syn"),
    "spider-realistic": lambda: build_spider_variant("spider-realistic"),
    "spider-dk": lambda: build_spider_variant("spider-dk"),
    "bank_financials": build_bank_financials,
    "aminer_simplified": build_aminer_simplified,
}


def _build_dataset(name: str):
    try:
        return _BUILDERS[name]()
    except KeyError:
        sys.exit(f"unknown dataset {name!r}; choose from {sorted(_BUILDERS)}")


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name, builder in _BUILDERS.items():
        dataset = builder()
        rows.append(
            {
                "dataset": name,
                "databases": len(dataset.databases),
                "train": len(dataset.train),
                "dev": len(dataset.dev),
            }
        )
    print(format_table(rows, title="Available benchmarks"))
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    if args.dialect != "sqlite":
        from repro.db.backends import backend_for_dialect
        from repro.errors import ExecutionError

        try:
            backend_for_dialect(args.dialect)
        except ExecutionError as exc:
            sys.exit(str(exc))
        if args.ts:
            sys.exit(
                "--ts requires the reference sqlite dialect "
                f"(test suites execute on sqlite), not {args.dialect!r}"
            )
    dataset = _build_dataset(args.dataset)
    parser = CodeSParser(args.model)
    kwargs = {}
    if args.mode == "sft":
        parser.fit(pair_samples(dataset), use_external_knowledge=args.ek)
    elif args.mode == "fewshot":
        retriever = DemonstrationRetriever(dataset.train, embedder=parser.embedder)
        kwargs = {
            "demonstrations_per_question": args.shots,
            "demonstration_retriever": retriever,
        }
    else:  # zeroshot
        kwargs = {"demonstrations_per_question": 0}
    result = evaluate_parser(
        parser, dataset,
        use_external_knowledge=args.ek,
        compute_ts=args.ts,
        limit=args.limit,
        deadline_s=args.deadline_s,
        max_retries=args.max_retries,
        static_eval=not args.no_static_eval,
        batch=args.batch,
        dialect=args.dialect,
        **kwargs,
    )
    print(format_table([result.as_row()], title=f"{args.model} on {args.dataset}"))
    if args.batch:
        stage_report = format_stage_report(result)
        if stage_report:
            print(stage_report)
    report = format_failure_report(result)
    if report:
        print(report)
    return 0


def _cmd_ask(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args.dataset)
    parser = CodeSParser(args.model)
    if dataset.train:
        parser.fit(pair_samples(dataset))
    db_id = args.db_id or next(iter(dataset.databases))
    database = dataset.databases[db_id]
    retry = (
        RetryPolicy(max_attempts=args.max_retries + 1)
        if args.max_retries
        else None
    )

    def _generate():
        return parser.generate(args.question, database)

    result = retry.call(_generate) if retry is not None else _generate()
    print(f"SQL: {result.sql}")
    if result.tier != "beam":
        print(f"(answered by the {result.tier!r} fallback tier)")

    def _execute():
        deadline = (
            Deadline.after(args.deadline_s) if args.deadline_s else None
        )
        return database.execute(result.sql, deadline=deadline)

    try:
        rows = retry.call(_execute) if retry is not None else _execute()
    except DeadlineExceededError as exc:
        sys.exit(f"query exceeded the --deadline-s budget: {exc}")
    for row in rows[:20]:
        print(" ", row)
    if len(rows) > 20:
        print(f"  ... ({len(rows)} rows total)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Answer one question and print the per-stage engine trace."""
    dataset = _build_dataset(args.dataset)
    parser = CodeSParser(args.model)
    if dataset.train:
        parser.fit(pair_samples(dataset))
    db_id = args.db_id or next(iter(dataset.databases))
    database = dataset.databases[db_id]
    result = parser.generate(args.question, database)
    print(f"SQL:  {result.sql}")
    print(f"tier: {result.tier}")
    if result.trace is None:
        print("(no trace recorded)")
        return 0
    print(
        format_table(
            result.trace.as_rows(),
            title=f"stage trace ({1000 * result.trace.total_s:.2f} ms total)",
        )
    )
    return 0


def _lint_targets(name: str) -> list[str]:
    if name == "all":
        return [*_BUILDERS, "dr-spider"]
    if name in _BUILDERS or name == "dr-spider":
        return [name]
    sys.exit(
        f"unknown dataset {name!r}; choose from "
        f"{sorted([*_BUILDERS, 'dr-spider', 'all'])}"
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    splits = tuple(args.splits.split(","))
    rows = []
    dirty = 0
    for name in _lint_targets(args.dataset):
        if name == "dr-spider":
            spider = build_spider()
            datasets = [
                build_dr_spider(perturbation, spider=spider)
                for perturbation in all_perturbation_names()
            ]
        else:
            datasets = [_BUILDERS[name]()]
        for dataset in datasets:
            report = dataset.lint(splits=splits)
            rows.append(report.as_row())
            dirty += len(report.error_findings)
            if report.findings and args.verbose:
                print(format_lint_report(report, max_findings=args.max_findings))
            elif report.error_findings:
                print(format_lint_report(report, max_findings=args.max_findings))
    print(format_table(rows, title=f"Gold SQL lint audit (splits: {args.splits})"))
    if dirty:
        print(f"FAIL: {dirty} gold queries carry error-tier diagnostics")
        return 1
    print("OK: no error-tier diagnostics in gold SQL")
    return 0


def _equiv_report(dataset, splits: tuple[str, ...], max_pairs: int) -> dict[str, object]:
    """Duplicate-ratio and prover-verdict histogram for one benchmark."""
    examples = []
    for split in splits:
        examples.extend(getattr(dataset, split, []) or [])
    keys = [canonical_key_sql(example.sql) for example in examples]
    unique = len(set(keys))
    verdicts = {verdict: 0 for verdict in Verdict}
    catalogs: dict[str, SchemaCatalog] = {}
    pairs_checked = 0
    by_db: dict[str, list] = {}
    for example in examples:
        by_db.setdefault(example.db_id, []).append(example)
    for db_id, group in by_db.items():
        if db_id not in catalogs:
            catalogs[db_id] = SchemaCatalog.from_database(
                dataset.database_of(group[0])
            )
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                if pairs_checked >= max_pairs:
                    break
                verdicts[
                    prove_equivalent(group[i].sql, group[j].sql, catalogs[db_id])
                ] += 1
                pairs_checked += 1
    n = len(examples)
    return {
        "dataset": dataset.name,
        "n": n,
        "unique": unique,
        "dup%": round(100 * (n - unique) / n, 1) if n else 0.0,
        "pairs": pairs_checked,
        "equivalent": verdicts[Verdict.EQUIVALENT],
        "distinct": verdicts[Verdict.DISTINCT],
        "unknown": verdicts[Verdict.UNKNOWN],
    }


def _cmd_equiv(args: argparse.Namespace) -> int:
    splits = tuple(args.splits.split(","))
    rows = []
    for name in _lint_targets(args.dataset):
        if name == "dr-spider":
            spider = build_spider()
            datasets = [
                build_dr_spider(perturbation, spider=spider)
                for perturbation in all_perturbation_names()
            ]
        else:
            datasets = [_BUILDERS[name]()]
        for dataset in datasets:
            rows.append(_equiv_report(dataset, splits, args.max_pairs))
    print(
        format_table(
            rows,
            title=(
                f"Gold SQL equivalence audit (splits: {args.splits}; "
                f"within-database pairs, capped at {args.max_pairs})"
            ),
        )
    )
    return 0


def _cmd_augment(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args.domain)
    pairs = augment_domain(
        dataset,
        n_question_to_sql=args.question_to_sql,
        n_sql_to_question=args.sql_to_question,
        seed=args.seed,
    )
    payload = [
        {"question": pair.question, "sql": pair.sql, "db_id": pair.db_id}
        for pair in pairs
    ]
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {len(payload)} pairs to {args.out}")
    else:
        print(json.dumps(payload[:5], indent=2))
        print(f"... {len(payload)} pairs total (use --out to save)")
    return 0


def _server_config(args: argparse.Namespace) -> ServerConfig:
    return ServerConfig(
        queue_capacity=args.queue_capacity,
        batch_size=args.batch_size,
        skeleton_watermark=args.skeleton_watermark,
        sentinel_watermark=args.sentinel_watermark,
        rate_per_tenant=args.rate_per_tenant,
        default_deadline_s=args.deadline_s,
    )


def _outcome_line(outcome) -> str:
    """One JSONL line per terminal outcome (stable key order)."""
    payload: dict[str, object] = {
        "id": outcome.request.request_id,
        "status": outcome.status,
    }
    if isinstance(outcome, Completed):
        payload["sql"] = outcome.sql
        payload["tier"] = outcome.tier
        payload["latency_s"] = round(outcome.latency_s, 6)
        payload["queue_s"] = round(outcome.queue_s, 6)
    elif isinstance(outcome, Shed):
        payload["reason"] = outcome.reason
    else:
        payload["error"] = outcome.error
    return json.dumps(payload, sort_keys=True)


def _build_router(args: argparse.Namespace, parser, databases) -> ShardRouter:
    """A shard router over ``--workers`` inline or process workers.

    Rate limiting stays central (the router's buckets); worker servers
    get ``rate_per_tenant=None`` so a tenant is not double-charged.
    """
    worker_config = dataclasses.replace(_server_config(args), rate_per_tenant=None)

    def handle_factory(worker_id: str):
        def build() -> Server:
            return Server(parser, databases, config=worker_config)

        if args.transport == "process":
            return ProcessWorkerHandle(worker_id, build)
        return InlineWorkerHandle(worker_id, build)

    shard_map = ShardMap(
        default_worker_ids(args.workers),
        virtual_nodes=args.virtual_nodes,
        seed=args.shard_seed,
    )
    return ShardRouter(
        shard_map,
        handle_factory,
        databases.keys(),
        config=ShardingConfig(
            virtual_nodes=args.virtual_nodes,
            seed=args.shard_seed,
            rate_per_tenant=args.rate_per_tenant,
        ),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """One-shot serving: JSONL requests in, JSONL outcomes out.

    Each input line is ``{"question": ..., "db_id": ..., "id"?,
    "tenant"?, "deadline_s"?}``.  Every request is submitted, the queue
    is drained through the micro-batch scheduler, and one JSON line per
    outcome is printed in input order.  ``--workers N`` shards the
    databases over N workers behind a router; ``--threads N`` drains
    one server from a thread pool instead.  Worker/pool failures are
    appended as their own JSONL records after the outcomes.
    """
    dataset = _build_dataset(args.dataset)
    parser = CodeSParser(args.model)
    if dataset.train:
        parser.fit(pair_samples(dataset))
    handle = open(args.input, encoding="utf-8") if args.input else sys.stdin
    try:
        requests = []
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            requests.append(
                ServeRequest(
                    request_id=str(record.get("id", f"q{index:04d}")),
                    question=record["question"],
                    db_id=record.get("db_id") or next(iter(dataset.databases)),
                    tenant=record.get("tenant", "default"),
                    deadline_s=record.get("deadline_s"),
                )
            )
    finally:
        if args.input:
            handle.close()
    outcomes = []
    failures: list[dict] = []
    metrics = None
    if args.workers > 1:
        router = _build_router(args, parser, dataset.databases)
        try:
            for request in requests:
                immediate = router.submit(request)
                if immediate is not None:
                    outcomes.append(immediate)
            # Classify any already-crashed worker before draining:
            # drain() skips down workers (a dead worker never acks),
            # and the recovery loop below restarts them and finishes
            # their re-dispatched work.
            router.tick()
            outcomes.extend(router.drain())
            while router.has_work():
                router.tick()
                router.pump()
                outcomes.extend(router.poll())
                if router.has_work():
                    router.clock.sleep(0.002)
            failures = list(router.failures)
            if args.metrics:
                metrics = router.metrics()
        finally:
            router.shutdown()
    else:
        server = Server(parser, dataset.databases, config=_server_config(args))
        for request in requests:
            immediate = server.submit(request)
            if immediate is not None:
                outcomes.append(immediate)
        if args.threads > 0:
            pool = WorkerPool(
                server, workers=args.threads, idle_wait_s=args.idle_wait_s
            )
            pool.start()
            pool.wait_for(len(requests) - len(outcomes))
            pool.stop()
            outcomes.extend(pool.results())
            failures = list(pool.failures)
        outcomes.extend(server.drain())
        if args.metrics:
            metrics = server.metrics()
    by_id = {outcome.request.request_id: outcome for outcome in outcomes}
    for request in requests:
        print(_outcome_line(by_id[request.request_id]))
    for failure in failures:
        print(json.dumps({"status": "worker_failure", **failure}, sort_keys=True))
    if metrics is not None:
        print(format_serving_report(metrics), file=sys.stderr)
    return 0


def _cmd_shardmap(args: argparse.Namespace) -> int:
    """Print the shard assignment table, plus a rebalance plan diff.

    ``--target-workers M`` diffs the current map against an M-worker
    map with the same virtual nodes and seed, listing exactly which
    databases would move — consistent hashing keeps that list minimal.
    """
    dataset = _build_dataset(args.dataset)
    db_ids = sorted(dataset.databases)
    shard_map = ShardMap(
        default_worker_ids(args.workers),
        virtual_nodes=args.virtual_nodes,
        seed=args.shard_seed,
    )
    rows = [
        {
            "worker": worker_id,
            "count": len(assigned),
            "databases": ", ".join(assigned) if assigned else "-",
        }
        for worker_id, assigned in sorted(shard_map.assignments(db_ids).items())
    ]
    print(
        format_table(
            rows,
            title=(
                f"shard map: {len(db_ids)} databases over {args.workers} "
                f"workers (vnodes={args.virtual_nodes} seed={args.shard_seed})"
            ),
        )
    )
    if args.target_workers is not None:
        new_map = ShardMap(
            default_worker_ids(args.target_workers),
            virtual_nodes=args.virtual_nodes,
            seed=args.shard_seed,
        )
        moves = shard_map.moves(new_map, db_ids)
        print()
        if not moves:
            print(f"rebalance to {args.target_workers} workers: nothing moves")
        else:
            print(
                format_table(
                    [
                        {"database": m.db_id, "from": m.source, "to": m.target}
                        for m in moves
                    ],
                    title=(
                        f"rebalance to {args.target_workers} workers: "
                        f"{len(moves)}/{len(db_ids)} databases move"
                    ),
                )
            )
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Seeded open-loop load generation on a FakeClock.

    Arrivals are Poisson at ``--rate``/s cycling through the dev split;
    service time comes from a flat per-tier model, so the printed
    throughput/latency/shed report is byte-stable for a given seed.
    """
    clock = FakeClock()
    dataset = _build_dataset(args.dataset)
    parser = CodeSParser(args.model, clock=clock)
    if dataset.train:
        parser.fit(pair_samples(dataset))
    server = Server(
        parser,
        dataset.databases,
        config=_server_config(args),
        clock=clock,
        service_model=ServiceModel(),
    )
    arrivals = poisson_workload(
        dataset.dev,
        n=args.n,
        rate=args.rate,
        seed=args.seed,
        deadline_s=args.deadline_s,
    )
    result = run_loadgen(
        server, arrivals, title=f"loadgen {args.dataset} seed={args.seed}"
    )
    print(result.report)
    return 0


def _cmd_providers(args: argparse.Namespace) -> int:
    """Seeded chaos run against a provider topology on a FakeClock.

    With ``--config`` the topology comes from a JSON RouterConfig;
    otherwise a demo mix (flaky primary, latency-realistic remote
    backup, dead standby) exercises retries, failover, hedging, and
    breakers.  Everything is seeded, so the printed tables are
    byte-stable for a given invocation.
    """
    from repro.config import get_model_config
    from repro.lm.providers import ProviderSpec, RouterConfig, build_router
    from repro.lm.registry import DEFAULT_LM_REGISTRY

    if args.config:
        with open(args.config) as handle:
            config = RouterConfig.from_dict(json.load(handle))
    else:
        config = RouterConfig(
            providers=(
                ProviderSpec(
                    name="primary",
                    kind="flaky",
                    priority=0,
                    failure_rate=args.failure_rate,
                    seed=args.seed,
                ),
                ProviderSpec(
                    name="backup",
                    kind="remote",
                    priority=1,
                    latency_median_s=0.03,
                    latency_tail_p=0.05,
                    seed=args.seed + 1,
                ),
                ProviderSpec(name="standby", kind="dead", priority=2),
            ),
            retry_max_attempts=2,
            hedge_delay_s=(
                args.hedge_delay_s if args.hedge_delay_s >= 0 else None
            ),
            probe_interval_s=0.5,
            name="demo",
        )
    clock = FakeClock()
    lm = DEFAULT_LM_REGISTRY.lm_for(get_model_config(args.model))
    router = build_router(config, lm, clock=clock)
    texts = lm.seen_sql[:8] or ["SELECT 1"]
    succeeded = 0
    for index in range(args.n):
        try:
            router.score(texts[index % len(texts)])
            succeeded += 1
        except ReproError:  # staticcheck: disable=EXC001 (probe counts successes; failures are the complement)
            pass
        clock.advance(0.01)
    stats = router.stats_dict()
    summary = [
        {"metric": "requests", "value": stats["requests"]},
        {"metric": "succeeded", "value": succeeded},
        {
            "metric": "availability",
            "value": f"{succeeded / max(1, args.n):.4f}",
        },
        {"metric": "failovers", "value": stats["failovers"]},
        {"metric": "retries", "value": stats["retries"]},
        {"metric": "hedges fired", "value": stats["hedges_fired"]},
        {"metric": "hedge wins", "value": stats["hedge_wins"]},
        {"metric": "hedge discarded", "value": stats["hedge_discarded"]},
        {"metric": "all-open sheds", "value": stats["all_open_sheds"]},
        {
            "metric": "p50 effective latency s",
            "value": f"{router.latency_quantile(0.50):.6f}",
        },
        {
            "metric": "p95 effective latency s",
            "value": f"{router.latency_quantile(0.95):.6f}",
        },
    ]
    print(format_table(summary, title=f"Router {config.name!r} seed={args.seed}"))
    print()
    print(format_table(router.as_rows(), title="Providers"))
    return 0


#: ``repro check`` exit codes — a stable contract for CI wrappers:
#: 0 = clean, 1 = findings or stale baseline, 2 = usage error.
CHECK_OK = 0
CHECK_FINDINGS = 1
CHECK_USAGE = 2

#: ``repro conformance`` exit codes — same contract shape as ``check``:
#: 0 = every backend matched SQLite everywhere, 1 = divergences or
#: backend errors, 2 = usage error.
CONFORMANCE_OK = 0
CONFORMANCE_DIVERGENT = 1
CONFORMANCE_USAGE = 2


def _cmd_conformance(args: argparse.Namespace) -> int:
    """Run the cross-dialect conformance suite and print the report."""
    from repro.db.backends import available_backends
    from repro.eval.conformance import (
        REFERENCE_BACKEND,
        bundled_dataset_builders,
        run_conformance,
    )

    builders = bundled_dataset_builders()
    if args.dataset == "all":
        datasets = None
    elif args.dataset in builders:
        datasets = [builders[args.dataset]()]
    else:
        print(
            f"repro conformance: unknown dataset {args.dataset!r}; choose "
            f"from {sorted([*builders, 'all'])}",
            file=sys.stderr,
        )
        return CONFORMANCE_USAGE
    if args.backend == "all":
        backends = None
    elif args.backend in available_backends():
        if args.backend == REFERENCE_BACKEND:
            print(
                f"repro conformance: {REFERENCE_BACKEND!r} is the reference "
                f"backend; pick one to compare against it",
                file=sys.stderr,
            )
            return CONFORMANCE_USAGE
        backends = [args.backend]
    else:
        print(
            f"repro conformance: unknown backend {args.backend!r}; choose "
            f"from {sorted([*available_backends(), 'all'])}",
            file=sys.stderr,
        )
        return CONFORMANCE_USAGE
    report = run_conformance(
        datasets=datasets, backends=backends, deadline_s=args.deadline_s
    )
    print(report.render(max_divergences=args.max_divergences))
    if report.ok:
        print("OK: every backend matches the reference on every gold set")
        return CONFORMANCE_OK
    print("FAIL: backends diverged from the reference (see report above)")
    return CONFORMANCE_DIVERGENT


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the staticcheck rule engine over a source tree.

    Imported lazily so the (pure-stdlib, but sizeable) rule registry
    only loads for this subcommand.
    """
    from pathlib import Path

    import repro
    from repro import staticcheck

    if args.list:
        for rule_id in staticcheck.REGISTRY.ids():
            rule_cls = staticcheck.REGISTRY.get(rule_id)
            print(f"{rule_id}  ({rule_cls.severity})  {rule_cls.title}")
        return CHECK_OK
    if args.explain:
        try:
            print(staticcheck.REGISTRY.explain(args.explain))
        except KeyError as exc:
            print(f"repro check: {exc.args[0]}", file=sys.stderr)
            return CHECK_USAGE
        return CHECK_OK

    root = Path(args.root) if args.root else Path(repro.__file__).parent
    if not root.is_dir():
        print(f"repro check: no such directory: {root}", file=sys.stderr)
        return CHECK_USAGE
    rule_ids = args.rules.split(",") if args.rules else None
    if args.write_baseline and not args.baseline:
        print(
            "repro check: --write-baseline requires --baseline PATH",
            file=sys.stderr,
        )
        return CHECK_USAGE

    baseline = None
    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is not None and baseline_path.exists() and not args.write_baseline:
        baseline = staticcheck.load_baseline(baseline_path)

    cache = None
    if args.cache:
        try:
            rule_classes = [
                staticcheck.REGISTRY.get(rid)
                for rid in (rule_ids or staticcheck.REGISTRY.ids())
            ]
        except KeyError as exc:
            print(f"repro check: {exc.args[0]}", file=sys.stderr)
            return CHECK_USAGE
        cache = staticcheck.FindingCache(
            args.cache, staticcheck.rules_fingerprint(rule_classes)
        )

    try:
        result = staticcheck.check_tree(
            root, rule_ids=rule_ids, baseline=baseline, cache=cache
        )
    except KeyError as exc:
        print(f"repro check: {exc.args[0]}", file=sys.stderr)
        return CHECK_USAGE
    if cache is not None:
        cache.save()

    if args.write_baseline:
        staticcheck.save_baseline(
            staticcheck.Baseline.from_findings(result.findings), baseline_path
        )
        print(
            f"wrote {len(result.findings)} grandfathered finding(s) "
            f"to {baseline_path}"
        )
        return CHECK_OK

    if args.fix:
        diff, changed = staticcheck.apply_fixes(
            result, root, baseline_path=baseline_path
        )
        if diff:
            print(diff, end="")
        print(f"fixed {changed} file(s)")
        # Findings the fixer cannot retire (anything but stale
        # suppressions / stale baseline entries) still fail the run.
        remaining = [f for f in result.findings if f.rule != "SUP001"]
        if result.stale_baseline and baseline_path is None:
            return CHECK_FINDINGS
        return CHECK_OK if not remaining else CHECK_FINDINGS

    if args.format == "json":
        print(staticcheck.render_json(result))
    elif args.format == "sarif":
        print(staticcheck.render_sarif(result))
    else:
        print(staticcheck.render_text(result))
    return CHECK_OK if result.ok() else CHECK_FINDINGS


def _add_reliability_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--deadline-s", type=float, default=None,
        help="wall-clock budget per SQL execution (seconds)",
    )
    subparser.add_argument(
        "--max-retries", type=int, default=0,
        help="retries for transient generation/execution failures",
    )


def _add_serving_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("--queue-capacity", type=int, default=64)
    subparser.add_argument("--batch-size", type=int, default=4)
    subparser.add_argument(
        "--skeleton-watermark", type=int, default=8,
        help="queue depth at which batches drop to skeleton effort",
    )
    subparser.add_argument(
        "--sentinel-watermark", type=int, default=24,
        help="queue depth at which batches answer with the sentinel",
    )
    subparser.add_argument(
        "--rate-per-tenant", type=float, default=None,
        help="token-bucket refill rate per tenant (requests/s); "
             "omit to disable rate limiting",
    )
    subparser.add_argument(
        "--deadline-s", type=float, default=None,
        help="default end-to-end deadline per request (seconds)",
    )


def _add_sharding_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--workers", type=int, default=1,
        help="shard the databases over N workers behind a router "
             "(1 = single-process serving, the default)",
    )
    subparser.add_argument(
        "--transport", default="inline", choices=("inline", "process"),
        help="worker transport: inline (deterministic, one process) or "
             "process (forked children, real parallelism)",
    )
    subparser.add_argument(
        "--virtual-nodes", type=int, default=64,
        help="virtual nodes per worker on the consistent-hash ring",
    )
    subparser.add_argument(
        "--shard-seed", type=int, default=0,
        help="seed for the consistent-hash ring points",
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CodeS text-to-SQL reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available benchmarks").set_defaults(
        func=_cmd_datasets
    )

    eval_parser = sub.add_parser("eval", help="evaluate a model on a benchmark")
    eval_parser.add_argument("--dataset", default="spider")
    eval_parser.add_argument(
        "--model", default="codes-7b", choices=sorted(MODEL_REGISTRY)
    )
    eval_parser.add_argument(
        "--mode", default="sft", choices=("sft", "fewshot", "zeroshot")
    )
    eval_parser.add_argument("--shots", type=int, default=3)
    eval_parser.add_argument("--ek", action="store_true",
                             help="use external knowledge (BIRD)")
    eval_parser.add_argument("--ts", action="store_true",
                             help="also compute test-suite accuracy")
    eval_parser.add_argument("--limit", type=int, default=None)
    eval_parser.add_argument(
        "--no-static-eval", action="store_true",
        help="disable the static EX short-circuit (execute every "
             "prediction even when provably equivalent to gold)",
    )
    eval_parser.add_argument(
        "--batch", action="store_true",
        help="hold one staged engine per database (reusing builders, "
             "analyzers and linking scores) and print per-stage timings",
    )
    eval_parser.add_argument(
        "--dialect", default="sqlite",
        help="run on the backend speaking this SQL dialect (gold queries "
             "are transpiled); default sqlite is the reference engine",
    )
    _add_reliability_flags(eval_parser)
    eval_parser.set_defaults(func=_cmd_eval)

    ask_parser = sub.add_parser("ask", help="translate one question to SQL")
    ask_parser.add_argument("--dataset", default="bank_financials")
    ask_parser.add_argument(
        "--model", default="codes-7b", choices=sorted(MODEL_REGISTRY)
    )
    ask_parser.add_argument("--db-id", default=None)
    ask_parser.add_argument("--question", required=True)
    _add_reliability_flags(ask_parser)
    ask_parser.set_defaults(func=_cmd_ask)

    trace_parser = sub.add_parser(
        "trace", help="answer one question and show the per-stage trace"
    )
    trace_parser.add_argument("--dataset", default="bank_financials")
    trace_parser.add_argument(
        "--model", default="codes-7b", choices=sorted(MODEL_REGISTRY)
    )
    trace_parser.add_argument("--db-id", default=None)
    trace_parser.add_argument("--question", required=True)
    trace_parser.set_defaults(func=_cmd_trace)

    augment_parser = sub.add_parser(
        "augment", help="run bi-directional augmentation for a domain"
    )
    augment_parser.add_argument(
        "--domain", default="bank_financials",
        choices=("bank_financials", "aminer_simplified"),
    )
    augment_parser.add_argument("--question-to-sql", type=int, default=60)
    augment_parser.add_argument("--sql-to-question", type=int, default=90)
    augment_parser.add_argument("--seed", type=int, default=0)
    augment_parser.add_argument("--out", default=None)
    augment_parser.set_defaults(func=_cmd_augment)

    lint_parser = sub.add_parser(
        "lint", help="statically audit a benchmark's gold SQL"
    )
    lint_parser.add_argument(
        "--dataset", default="all",
        help="benchmark name, 'dr-spider' for all perturbations, or 'all'",
    )
    lint_parser.add_argument(
        "--splits", default="train,dev",
        help="comma-separated splits to audit (default: train,dev)",
    )
    lint_parser.add_argument(
        "--max-findings", type=int, default=10,
        help="dirty queries to print per dataset",
    )
    lint_parser.add_argument(
        "--verbose", action="store_true",
        help="also print reports for datasets with warnings only",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    equiv_parser = sub.add_parser(
        "equiv", help="report gold-SQL duplicate ratios and prover verdicts"
    )
    equiv_parser.add_argument(
        "--dataset", default="all",
        help="benchmark name, 'dr-spider' for all perturbations, or 'all'",
    )
    equiv_parser.add_argument(
        "--splits", default="train,dev",
        help="comma-separated splits to audit (default: train,dev)",
    )
    equiv_parser.add_argument(
        "--max-pairs", type=int, default=2000,
        help="cap on within-database query pairs fed to the prover",
    )
    equiv_parser.set_defaults(func=_cmd_equiv)

    serve_parser = sub.add_parser(
        "serve", help="one-shot JSONL serving through the micro-batch scheduler"
    )
    serve_parser.add_argument("--dataset", default="bank_financials")
    serve_parser.add_argument(
        "--model", default="codes-1b", choices=sorted(MODEL_REGISTRY)
    )
    serve_parser.add_argument(
        "--input", default=None,
        help="JSONL request file (default: stdin); each line is "
             '{"question": ..., "db_id": ..., "id"?, "tenant"?, "deadline_s"?}',
    )
    serve_parser.add_argument(
        "--metrics", action="store_true",
        help="print the server metrics snapshot to stderr after serving",
    )
    serve_parser.add_argument(
        "--threads", type=int, default=0,
        help="drain through a thread worker pool of this size "
             "(0 = drain synchronously); pool failures are appended "
             "to the JSONL output",
    )
    serve_parser.add_argument(
        "--idle-wait-s", type=float, default=0.05,
        help="idle park interval for --threads workers (seconds)",
    )
    _add_serving_flags(serve_parser)
    _add_sharding_flags(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    shardmap_parser = sub.add_parser(
        "shardmap",
        help="show the consistent-hash shard assignments and a "
             "rebalance plan diff",
    )
    shardmap_parser.add_argument("--dataset", default="bank_financials")
    shardmap_parser.add_argument(
        "--target-workers", type=int, default=None,
        help="also print which databases move when rebalancing to "
             "this many workers",
    )
    _add_sharding_flags(shardmap_parser)
    shardmap_parser.set_defaults(func=_cmd_shardmap)

    loadgen_parser = sub.add_parser(
        "loadgen", help="seeded open-loop Poisson load report on a fake clock"
    )
    loadgen_parser.add_argument("--dataset", default="bank_financials")
    loadgen_parser.add_argument(
        "--model", default="codes-1b", choices=sorted(MODEL_REGISTRY)
    )
    loadgen_parser.add_argument("--n", type=int, default=64,
                                help="number of arrivals")
    loadgen_parser.add_argument("--rate", type=float, default=30.0,
                                help="Poisson arrival rate (requests/s)")
    loadgen_parser.add_argument("--seed", type=int, default=0)
    _add_serving_flags(loadgen_parser)
    loadgen_parser.set_defaults(func=_cmd_loadgen)

    providers_parser = sub.add_parser(
        "providers",
        help="seeded chaos run against an LM provider topology",
    )
    providers_parser.add_argument(
        "--config", default=None,
        help="JSON RouterConfig file; omit for the built-in demo mix",
    )
    providers_parser.add_argument("--model", default="codes-7b")
    providers_parser.add_argument(
        "--n", type=int, default=500, help="routed requests to simulate"
    )
    providers_parser.add_argument("--seed", type=int, default=0)
    providers_parser.add_argument(
        "--failure-rate", type=float, default=0.3,
        help="demo mix: primary provider's injected failure rate",
    )
    providers_parser.add_argument(
        "--hedge-delay-s", type=float, default=0.02,
        help="fire a hedged backup after this many seconds; "
             "negative disables hedging",
    )
    providers_parser.set_defaults(func=_cmd_providers)

    conformance_parser = sub.add_parser(
        "conformance",
        help="execute every bundled gold query on each backend and "
             "result-compare against the reference SQLite engine",
    )
    conformance_parser.add_argument(
        "--dataset", default="all",
        help="one bundled gold set by name, or 'all' (the default)",
    )
    conformance_parser.add_argument(
        "--backend", default="all",
        help="one registered backend to audit, or 'all' non-reference "
             "backends (the default)",
    )
    conformance_parser.add_argument(
        "--deadline-s", type=float, default=None,
        help="wall-clock budget per backend-side execution (seconds)",
    )
    conformance_parser.add_argument(
        "--max-divergences", type=int, default=10,
        help="divergent examples to print per backend",
    )
    conformance_parser.set_defaults(func=_cmd_conformance)

    check_parser = sub.add_parser(
        "check", help="run the staticcheck rule engine over a source tree"
    )
    check_parser.add_argument(
        "--root", default=None,
        help="tree to check (default: the installed repro package)",
    )
    check_parser.add_argument(
        "--format", default="text", choices=("text", "json", "sarif"),
    )
    check_parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all registered)",
    )
    check_parser.add_argument(
        "--baseline", default=None,
        help="JSON baseline file of grandfathered findings",
    )
    check_parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to --baseline instead of failing",
    )
    check_parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print one rule's documentation and exit",
    )
    check_parser.add_argument(
        "--list", action="store_true",
        help="list registered rules and exit",
    )
    check_parser.add_argument(
        "--fix", action="store_true",
        help="delete stale suppression comments and prune stale "
             "baseline entries, printing a unified diff",
    )
    check_parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="incremental finding cache file; unchanged modules skip "
             "per-module rules on warm runs",
    )
    check_parser.set_defaults(func=_cmd_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # e.g. `repro check --explain RULE | head` — the reader closed
        # stdout; exit quietly instead of tracebacking.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
