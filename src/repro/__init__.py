"""repro — an offline reproduction of *CodeS: Towards Building
Open-source Language Models for Text-to-SQL* (SIGMOD 2024).

Quickstart::

    from repro import CodeSParser, build_spider, evaluate_parser, pair_samples

    spider = build_spider()
    parser = CodeSParser("codes-7b")
    parser.fit(pair_samples(spider))
    result = evaluate_parser(parser, spider)
    print(result.as_row())

See DESIGN.md for the system inventory and the substitutions made for
offline execution, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.analysis import (
    Diagnostic,
    SchemaCatalog,
    SemanticAnalyzer,
    Severity,
    lint_dataset,
)
from repro.config import CODES_TIERS, MODEL_REGISTRY, ModelConfig, get_model_config
from repro.core import CodeSParser, DemonstrationRetriever, GenerationResult
from repro.datasets import (
    Text2SQLDataset,
    Text2SQLExample,
    build_aminer_simplified,
    build_bank_financials,
    build_bird,
    build_dr_spider,
    build_spider,
    build_spider_variant,
)
from repro.db import Column, Database, ForeignKey, Schema, Table
from repro.eval import (
    EvalResult,
    FailureRecord,
    TestSuite,
    evaluate_parser,
    execution_match,
    execution_match_outcome,
    format_failure_report,
    pair_samples,
    print_table,
)
from repro.augment import SyntheticLLM, augment_domain
from repro.reliability import (
    CircuitBreaker,
    Deadline,
    FakeClock,
    FaultyDatabase,
    FlakyLLM,
    RetryPolicy,
)
from repro.promptgen import DatabasePrompt, PromptBuilder, PromptOptions

__version__ = "1.0.0"

__all__ = [
    "CODES_TIERS",
    "CircuitBreaker",
    "CodeSParser",
    "Column",
    "Database",
    "DatabasePrompt",
    "Deadline",
    "DemonstrationRetriever",
    "Diagnostic",
    "EvalResult",
    "FailureRecord",
    "FakeClock",
    "FaultyDatabase",
    "FlakyLLM",
    "ForeignKey",
    "GenerationResult",
    "RetryPolicy",
    "MODEL_REGISTRY",
    "ModelConfig",
    "PromptBuilder",
    "PromptOptions",
    "Schema",
    "SchemaCatalog",
    "SemanticAnalyzer",
    "Severity",
    "SyntheticLLM",
    "Table",
    "TestSuite",
    "Text2SQLDataset",
    "Text2SQLExample",
    "augment_domain",
    "build_aminer_simplified",
    "build_bank_financials",
    "build_bird",
    "build_dr_spider",
    "build_spider",
    "build_spider_variant",
    "evaluate_parser",
    "execution_match",
    "execution_match_outcome",
    "format_failure_report",
    "get_model_config",
    "lint_dataset",
    "pair_samples",
    "print_table",
]
