"""The CodeS text-to-SQL parser (paper §4–§8).

:class:`CodeSParser` owns the *model assets* — the pre-trained LM (via
:class:`repro.lm.registry.LMRegistry`), the embedder, the SFT template
index, the schema classifier and the pre-training skeleton bank — and
delegates inference to the staged engine (:mod:`repro.engine`):

    value_retrieve → schema_link → prompt_build → candidate_gen →
    rank → lint_gate → equiv_dedup → execute_beam → degrade

Each stage is a small class with a typed contract over a shared
:class:`~repro.engine.context.InferenceContext`; cross-cutting
concerns (tracing, fault injection) are engine middleware, and
per-database resources (prompt builders, analyzers, cost estimators)
resolve through the parser's clearable
:class:`~repro.engine.cache.StageCache`.  ``generate`` is a thin
facade that runs the engine and packages the result.

Model tiers (1B…15B) differ in embedder width, n-gram order, skeleton
capacity and slot depth — see :mod:`repro.config`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.config import ModelConfig, get_model_config
from repro.core.ranking import SENTINEL_SQL, lint_gated_order  # noqa: F401 - re-export
from repro.datasets.base import Text2SQLExample
from repro.db.database import Database
from repro.engine import (
    BeamPerturbMiddleware,
    Engine,
    InferenceContext,
    InferenceTrace,
    Middleware,
    StageCache,
    TraceRecorder,
    build_default_engine,
)
from repro.errors import CheckpointError, SQLSyntaxError, TrainingError
from repro.lm.pretrain import PretrainedLM
from repro.lm.registry import DEFAULT_LM_REGISTRY, LMRegistry
from repro.linking.classifier import LinkingExample, SchemaItemClassifier
from repro.linking.features import SchemaFeatureExtractor
from repro.linking.lexical import LexicalSchemaScorer
from repro.promptgen.builder import DatabasePrompt
from repro.promptgen.options import PromptOptions
from repro.reliability.clock import SYSTEM_CLOCK, Clock
from repro.sqlgen.ast import Query
from repro.sqlgen.parser import parse_sql
from repro.sqlgen.serializer import serialize
from repro.sqlgen.skeleton import skeleton_of_query
from repro.text.embedder import HashedNgramEmbedder
from repro.text.pattern import extract_pattern

if TYPE_CHECKING:
    from repro.lm.providers.config import RouterConfig
from repro.core.slotfill import InstantiationContext, instantiate_template


def pretrained_lm_for(config: ModelConfig) -> PretrainedLM:
    """The pre-trained LM for a model tier, from the default registry."""
    return DEFAULT_LM_REGISTRY.lm_for(config)


@dataclass(frozen=True)
class _IndexEntry:
    """One retrievable template with its source question."""

    question: str
    template: Query
    question_vec: np.ndarray = field(repr=False, compare=False, default=None)
    pattern_vec: np.ndarray = field(repr=False, compare=False, default=None)


@dataclass(frozen=True)
class GenerationResult:
    """The chosen SQL plus diagnostics.

    ``tier`` reports which degradation tier answered: ``"beam"`` (an
    execution-guided beam candidate), ``"skeleton"`` (the pre-training
    skeleton-bank fallback after no beam candidate executed), or
    ``"sentinel"`` (the safe constant query of last resort).

    Lint-gate accounting (all zero when the gate is disabled):
    ``diagnostics`` carries the analyzer findings for the chosen SQL,
    ``lint_demoted`` how many beam candidates were demoted for
    error-tier diagnostics, ``executions_used`` how many beam
    candidates were actually executed, and ``executions_avoided`` how
    many executions the static passes saved: demoted candidates the
    ungated beam would have executed ahead of the winner, plus
    canonically-duplicate candidates that shared a single execution
    with their equivalence-class representative.

    Equivalence-dedup accounting: ``beam_deduped`` is how many beam
    candidates collapsed into an already-seen equivalence class
    (:func:`repro.analysis.equivalence.canonical_key_sql`); each class
    executes only its statically cheapest member.

    ``trace`` carries the engine's per-stage record (wall time via the
    injectable Clock, candidate counts, cache traffic, executions) —
    what ``repro trace`` prints and batch eval aggregates.
    """

    sql: str
    executable: bool
    candidates: tuple[str, ...]
    prompt: DatabasePrompt
    tier: str = "beam"
    diagnostics: tuple[Diagnostic, ...] = ()
    lint_demoted: int = 0
    executions_used: int = 0
    executions_avoided: int = 0
    beam_deduped: int = 0
    trace: InferenceTrace | None = field(default=None, repr=False, compare=False)


class CodeSParser:
    """Retrieval-and-fill text-to-SQL parser with CodeS's architecture."""

    def __init__(
        self,
        model: str = "codes-7b",
        options: PromptOptions | None = None,
        seed: int = 0,
        use_pattern_similarity: bool = True,
        config: ModelConfig | None = None,
        lint_gate: bool = True,
        beam_perturber: Callable[[list[str]], list[str]] | None = None,
        equivalence_dedup: bool = True,
        clock: Clock | None = None,
        lm_registry: LMRegistry | None = None,
        providers: "RouterConfig | None" = None,
    ):
        self.config = config or get_model_config(model)
        self.use_pattern_similarity = use_pattern_similarity
        self.lint_gate = lint_gate
        #: Collapse canonically-equivalent beam candidates into one
        #: execution (repro.analysis.equivalence); sound because
        #: equivalent queries share executability and results.
        self.equivalence_dedup = equivalence_dedup
        #: Fault-injection hook (e.g. reliability.SchemaHallucinator):
        #: applied by BeamPerturbMiddleware right after the rank stage
        #: cuts the beam, before the lint gate sees it.
        self.beam_perturber = beam_perturber
        self.clock = clock or SYSTEM_CLOCK
        options = options or PromptOptions()
        # The model's context length caps the prompt budget (Table 1:
        # CodeS-15B has the shorter 6,144-token context).
        from dataclasses import replace as _replace

        self.options = _replace(
            options,
            max_prompt_chars=min(
                options.max_prompt_chars, self.config.max_context_chars
            ),
        )
        registry = lm_registry or DEFAULT_LM_REGISTRY
        self.lm = registry.lm_for(self.config)
        #: The reliability boundary in front of the LM.  With the
        #: default config (one fault-free zero-latency local provider)
        #: ``router.score`` is arithmetically identical to
        #: ``lm.score``, preserving golden engine parity; a
        #: ``providers=`` topology swaps in failover/hedging without
        #: the engine noticing.  Built through the registry, never by
        #: importing repro.lm.providers here (ARCH006).
        self.router = registry.router_for(
            self.config, providers, clock=clock
        )
        self.embedder = HashedNgramEmbedder(dim=self.config.embed_dim)
        self.extractor = SchemaFeatureExtractor(
            embedder=self.embedder,
            use_comments=self.options.include_comments,
        )
        self.classifier: SchemaItemClassifier | None = None
        self.seed = seed
        self._lexical_scorer = LexicalSchemaScorer(self.extractor)
        self._index: list[_IndexEntry] = []
        self._skeleton_bank: list[Query] = self._mine_skeleton_bank()
        #: Per-database resources (builders, analyzers, estimators,
        #: linking scores), shared by every engine this parser builds.
        self.cache = StageCache()
        self._engine = self.build_engine(cache=self.cache)

    def build_engine(
        self,
        middleware: Iterable[Middleware] = (),
        cache: StageCache | None = None,
    ) -> Engine:
        """A staged engine over this parser's model assets.

        The default middleware chain — the Clock-driven TraceRecorder
        and the beam-perturber adapter — always runs outermost-first;
        ``middleware`` is appended after it.  Callers that want
        isolated per-database resource reuse (the batch eval harness)
        pass their own ``cache``.
        """
        base: tuple[Middleware, ...] = (
            TraceRecorder(self.clock),
            BeamPerturbMiddleware(provider=lambda: self.beam_perturber),
        )
        return build_default_engine(
            self, middleware=base + tuple(middleware), cache=cache
        )

    @property
    def engine(self) -> Engine:
        """The parser's default staged engine."""
        return self._engine

    # -- pre-training knowledge ----------------------------------------------

    def _mine_skeleton_bank(self) -> list[Query]:
        """Distinct SQL skeletons the model absorbed during pre-training."""
        counts: Counter[str] = Counter()
        representative: dict[str, Query] = {}
        for sql in self.lm.seen_sql:
            try:
                query = parse_sql(sql)
            except SQLSyntaxError:
                continue
            skeleton = skeleton_of_query(query)
            counts[skeleton] += 1
            representative.setdefault(skeleton, query)
        ranked = [skeleton for skeleton, _ in counts.most_common()]
        capacity = self.config.skeleton_capacity
        return [representative[skeleton] for skeleton in ranked[:capacity]]

    @property
    def skeleton_bank_size(self) -> int:
        return len(self._skeleton_bank)

    def _knows_skeleton(self, template: Query) -> bool:
        """Did pre-training expose this SQL structure to the model?"""
        if not hasattr(self, "_skeleton_set"):
            self._skeleton_set = {
                skeleton_of_query(query) for query in self._skeleton_bank
            }
        return skeleton_of_query(template) in self._skeleton_set

    # -- supervised fine-tuning ------------------------------------------------

    def fit(
        self,
        samples: list[tuple[Text2SQLExample, Database]],
        classifier_epochs: int = 30,
        use_external_knowledge: bool = False,
    ) -> None:
        """SFT: index the training templates and train the schema classifier."""
        if not samples:
            raise TrainingError("cannot fine-tune on an empty training set")
        entries: list[_IndexEntry] = []
        linking: list[LinkingExample] = []
        for example, database in samples:
            question = (
                example.question_with_knowledge()
                if use_external_knowledge
                else example.question
            )
            try:
                template = parse_sql(example.sql)
            except SQLSyntaxError:
                continue
            entries.append(
                _IndexEntry(
                    question=question,
                    template=template,
                    question_vec=self.embedder.embed(question),
                    pattern_vec=self.embedder.embed(extract_pattern(question)),
                )
            )
            try:
                linking.append(
                    LinkingExample.from_sql(question, database.schema, example.sql)
                )
            except TrainingError:
                continue
        if not entries:
            raise TrainingError("no parseable training SQL found")
        self._index = entries
        self.classifier = SchemaItemClassifier(
            extractor=self.extractor, seed=self.seed
        )
        self.classifier.fit(linking, epochs=classifier_epochs, seed=self.seed)
        # Builders and linking scores cached pre-fit were built without
        # the trained classifier; drop them so inference sees it.
        self.cache.clear_kind("builder")
        self.cache.clear_kind("values")
        self.cache.clear_kind("link")
        self.cache.clear_kind("link_assets")

    @property
    def fine_tuned(self) -> bool:
        return self.classifier is not None and bool(self._index)

    # -- checkpointing -------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the fine-tuned state (.npz): index + classifier.

        Pre-training state is derived deterministically from the model
        name, so only the SFT artifacts need to be stored.
        """
        import json

        import numpy as np

        if not self.fine_tuned:
            raise CheckpointError("cannot save a parser that was not fine-tuned")
        index_payload = [
            {"question": entry.question, "sql": serialize(entry.template)}
            for entry in self._index
        ]
        meta = {
            "model": self.config.name,
            "use_pattern_similarity": self.use_pattern_similarity,
            "seed": self.seed,
        }
        state = self.classifier.model.state_dict()
        np.savez(
            path,
            meta=json.dumps(meta),
            index=json.dumps(index_payload),
            **{f"clf_{key}": value for key, value in state.items()},
        )

    @classmethod
    def load(cls, path: str, options: PromptOptions | None = None) -> "CodeSParser":
        """Restore a parser saved with :meth:`save`."""
        import json

        import numpy as np

        try:
            archive = np.load(path, allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
        meta = json.loads(str(archive["meta"]))
        parser = cls(
            meta["model"],
            options=options,
            seed=int(meta["seed"]),
            use_pattern_similarity=bool(meta["use_pattern_similarity"]),
        )
        entries: list[_IndexEntry] = []
        for item in json.loads(str(archive["index"])):
            template = parse_sql(item["sql"])
            question = item["question"]
            entries.append(
                _IndexEntry(
                    question=question,
                    template=template,
                    question_vec=parser.embedder.embed(question),
                    pattern_vec=parser.embedder.embed(extract_pattern(question)),
                )
            )
        parser._index = entries
        parser.classifier = SchemaItemClassifier(
            extractor=parser.extractor, seed=parser.seed
        )
        parser.classifier.model.load_state_dict(
            {
                key[len("clf_"):]: archive[key]
                for key in archive.files
                if key.startswith("clf_")
            }
        )
        parser.classifier.trained = True
        parser.cache.clear()
        return parser

    # -- template retrieval ------------------------------------------------------

    def _entries_from(self, examples: list[Text2SQLExample]) -> list[_IndexEntry]:
        entries = []
        for example in examples:
            try:
                template = parse_sql(example.sql)
            except SQLSyntaxError:
                continue
            entries.append(
                _IndexEntry(
                    question=example.question,
                    template=template,
                    question_vec=self.embedder.embed(example.question),
                    pattern_vec=self.embedder.embed(
                        extract_pattern(example.question)
                    ),
                )
            )
        return entries

    def _retrieve_templates(
        self, question: str, entries: list[_IndexEntry], top_n: int
    ) -> list[tuple[Query, float]]:
        """Top templates by Eq. 4 similarity, diversified by skeleton.

        Near-duplicate templates waste beam slots, so at most two
        entries per SQL skeleton survive.
        """
        if not entries:
            return []
        question_vec = self.embedder.embed(question)
        pattern_vec = self.embedder.embed(extract_pattern(question))
        scored = []
        for entry in entries:
            sim = float(entry.question_vec @ question_vec)
            if self.use_pattern_similarity:
                sim = max(sim, float(entry.pattern_vec @ pattern_vec))
            scored.append((entry.template, sim))
        scored.sort(key=lambda pair: -pair[1])
        diverse: list[tuple[Query, float]] = []
        per_skeleton: Counter[str] = Counter()
        for template, sim in scored:
            skeleton = skeleton_of_query(template)
            if per_skeleton[skeleton] >= 2:
                continue
            per_skeleton[skeleton] += 1
            diverse.append((template, sim))
            if len(diverse) >= top_n:
                break
        return diverse

    # -- generation ----------------------------------------------------------------

    def generate(
        self,
        question: str,
        database: Database,
        demonstrations: list[Text2SQLExample] | None = None,
        external_knowledge: str = "",
        degrade: bool = True,
        engine: Engine | None = None,
        effort: str = "full",
    ) -> GenerationResult:
        """Translate ``question`` into SQL for ``database``.

        Thin facade over the staged engine: assembles the
        :class:`InferenceContext`, runs the nine stages, and packages
        the context into a :class:`GenerationResult` (with the
        per-stage ``trace``).

        With ``demonstrations`` the engine runs in few-shot ICL mode
        (templates come from the demonstrations plus the pre-training
        skeleton bank); otherwise it uses the SFT index built by
        :meth:`fit`.

        With ``degrade`` (the default) generation never raises for an
        unanswerable question: it falls through the beam to the
        skeleton-bank fallback and finally the safe sentinel, reporting
        the answering tier on :attr:`GenerationResult.tier`.  Pass
        ``degrade=False`` to restore the strict behaviour that raises
        :class:`GenerationError` when no candidate can be built.

        ``engine`` routes the run through a caller-held engine (the
        batch harness keeps one per database); defaults to the
        parser's own.

        ``effort`` selects how much work the pipeline spends:
        ``"full"`` (the default) runs the whole beam search, while
        ``"skeleton"`` skips candidate generation and ranking so the
        degradation ladder answers from the pre-training skeleton bank
        directly — the serving layer requests this under overload.
        Reduced effort requires ``degrade=True`` (there is no beam to
        surface when degradation is off).
        """
        if effort not in ("full", "skeleton"):
            raise ValueError(
                f"effort must be 'full' or 'skeleton', got {effort!r}"
            )
        if effort != "full" and not degrade:
            raise ValueError("reduced effort requires degrade=True")
        ctx = InferenceContext(
            question=question,
            database=database,
            demonstrations=demonstrations,
            external_knowledge=external_knowledge,
            degrade=degrade,
            effort=effort,
        )
        (engine or self._engine).run(ctx)
        return GenerationResult(
            sql=ctx.chosen,
            executable=database.is_executable(ctx.chosen),
            candidates=tuple(ctx.ordered),
            prompt=ctx.prompt,
            tier=ctx.tier,
            diagnostics=ctx.lint.get(ctx.chosen, ()),
            lint_demoted=len(ctx.demoted),
            executions_used=ctx.executions_used,
            executions_avoided=ctx.executions_avoided,
            beam_deduped=ctx.beam_deduped,
            trace=ctx.trace,
        )

    def _skeleton_fallback(
        self, database: Database, ctx: InstantiationContext, max_templates: int = 24
    ) -> str | None:
        """First executable instantiation from the pre-training bank.

        The graceful-degradation middle tier: when no beam candidate
        executes, fall back on the model's structural repertoire alone
        and return the first instantiation the database accepts.
        """
        for template in self._skeleton_bank[:max_templates]:
            for candidate in instantiate_template(template, ctx):
                sql = serialize(candidate.query)
                if database.is_executable(sql):
                    return sql
        return None
