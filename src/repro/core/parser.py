"""The CodeS text-to-SQL parser (paper §4–§8).

Pipeline per question:

1. **database prompt construction** (§6) — schema filter, value
   retriever, metadata (via :class:`repro.promptgen.PromptBuilder`);
2. **template retrieval** — the most similar training examples (SFT) or
   provided demonstrations (ICL) by the question-pattern-aware
   similarity of §8.2, backed by the model's pre-training skeleton bank
   (mined from the SQL its corpus actually contained);
3. **slot filling** (:mod:`repro.core.slotfill`) — templates are
   instantiated against the target schema using linking scores,
   retrieved values, and question literals;
4. **ranking** — candidates are scored by template similarity plus the
   pre-trained LM's sequence prior;
5. **lint gate** (:mod:`repro.analysis`) — beam candidates are
   statically analyzed against the database's schema catalog;
   candidates with error-tier diagnostics (hallucinated columns,
   aggregate misuse, type-incompatible predicates) are demoted below
   clean ones, so execution round-trips are spent on plausible SQL;
6. **execution-guided beam** (§9.1.4) — of the top ``beam_size``
   candidates in linted order, the first that executes on the database
   wins.

Model tiers (1B…15B) differ in embedder width, n-gram order, skeleton
capacity and slot depth — see :mod:`repro.config`.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.analyzer import SemanticAnalyzer
from repro.analysis.catalog import SchemaCatalog
from repro.analysis.cost import CostEstimator
from repro.analysis.diagnostics import Diagnostic, has_errors
from repro.analysis.equivalence import canonical_key_sql
from repro.config import ModelConfig, get_model_config
from repro.datasets.base import Text2SQLExample
from repro.db.database import Database
from repro.errors import (
    CheckpointError,
    GenerationError,
    SQLSyntaxError,
    TrainingError,
)
from repro.lm.corpus import CorpusConfig, PretrainCorpus, build_corpus
from repro.lm.pretrain import IncrementalPretrainer, PretrainedLM, pretrain_base_lm
from repro.linking.classifier import LinkingExample, SchemaItemClassifier
from repro.linking.features import SchemaFeatureExtractor
from repro.linking.lexical import LexicalSchemaScorer
from repro.promptgen.builder import DatabasePrompt, PromptBuilder
from repro.promptgen.options import PromptOptions
from repro.sqlgen.ast import Query
from repro.sqlgen.parser import parse_sql
from repro.sqlgen.serializer import serialize
from repro.sqlgen.skeleton import skeleton_of_query
from repro.text.embedder import HashedNgramEmbedder
from repro.text.pattern import extract_pattern
from repro.core.slotfill import InstantiationContext, instantiate_template
from repro.core.structure import structure_prior

#: Module-level cache of pre-trained LMs, keyed by recipe.
_LM_CACHE: dict[tuple[str, bool, int], PretrainedLM] = {}
_CORPUS_CACHE: dict[int, PretrainCorpus] = {}


def _corpus(seed: int = 0) -> PretrainCorpus:
    if seed not in _CORPUS_CACHE:
        _CORPUS_CACHE[seed] = build_corpus(CorpusConfig(seed=seed))
    return _CORPUS_CACHE[seed]


def pretrained_lm_for(config: ModelConfig) -> PretrainedLM:
    """The (cached) pre-trained LM for a model tier."""
    key = (config.family, config.incremental, config.ngram_order)
    if key not in _LM_CACHE:
        corpus = _corpus()
        base = pretrain_base_lm(
            config.family, order=config.ngram_order, corpus=corpus
        )
        if config.incremental:
            base = IncrementalPretrainer(corpus=corpus).run(base)
        _LM_CACHE[key] = base
    return _LM_CACHE[key]


@dataclass(frozen=True)
class _IndexEntry:
    """One retrievable template with its source question."""

    question: str
    template: Query
    question_vec: np.ndarray = field(repr=False, compare=False, default=None)
    pattern_vec: np.ndarray = field(repr=False, compare=False, default=None)


#: Last-resort SQL when every generation tier fails (always executable).
SENTINEL_SQL = "SELECT 1"


@dataclass(frozen=True)
class GenerationResult:
    """The chosen SQL plus diagnostics.

    ``tier`` reports which degradation tier answered: ``"beam"`` (an
    execution-guided beam candidate), ``"skeleton"`` (the pre-training
    skeleton-bank fallback after no beam candidate executed), or
    ``"sentinel"`` (the safe constant query of last resort).

    Lint-gate accounting (all zero when the gate is disabled):
    ``diagnostics`` carries the analyzer findings for the chosen SQL,
    ``lint_demoted`` how many beam candidates were demoted for
    error-tier diagnostics, ``executions_used`` how many beam
    candidates were actually executed, and ``executions_avoided`` how
    many executions the static passes saved: demoted candidates the
    ungated beam would have executed ahead of the winner, plus
    canonically-duplicate candidates that shared a single execution
    with their equivalence-class representative.

    Equivalence-dedup accounting: ``beam_deduped`` is how many beam
    candidates collapsed into an already-seen equivalence class
    (:func:`repro.analysis.equivalence.canonical_key_sql`); each class
    executes only its statically cheapest member.
    """

    sql: str
    executable: bool
    candidates: tuple[str, ...]
    prompt: DatabasePrompt
    tier: str = "beam"
    diagnostics: tuple[Diagnostic, ...] = ()
    lint_demoted: int = 0
    executions_used: int = 0
    executions_avoided: int = 0
    beam_deduped: int = 0


def lint_gated_order(
    beam: list[str], analyzer: SemanticAnalyzer
) -> tuple[list[str], dict[str, tuple[Diagnostic, ...]]]:
    """Reorder ``beam`` so statically clean candidates execute first.

    Candidates with error-tier diagnostics keep their relative ranking
    but sink below every clean candidate — they are still reachable
    (static analysis can be wrong; executability has the last word) but
    no longer burn execution round-trips ahead of plausible SQL.
    Returns the reordered beam plus each candidate's diagnostics.
    """
    diagnostics = {sql: tuple(analyzer.analyze_sql(sql)) for sql in beam}
    clean = [sql for sql in beam if not has_errors(diagnostics[sql])]
    dirty = [sql for sql in beam if has_errors(diagnostics[sql])]
    return clean + dirty, diagnostics


class CodeSParser:
    """Retrieval-and-fill text-to-SQL parser with CodeS's architecture."""

    def __init__(
        self,
        model: str = "codes-7b",
        options: PromptOptions | None = None,
        seed: int = 0,
        use_pattern_similarity: bool = True,
        config: ModelConfig | None = None,
        lint_gate: bool = True,
        beam_perturber: Callable[[list[str]], list[str]] | None = None,
        equivalence_dedup: bool = True,
    ):
        self.config = config or get_model_config(model)
        self.use_pattern_similarity = use_pattern_similarity
        self.lint_gate = lint_gate
        #: Collapse canonically-equivalent beam candidates into one
        #: execution (repro.analysis.equivalence); sound because
        #: equivalent queries share executability and results.
        self.equivalence_dedup = equivalence_dedup
        #: Fault-injection hook (e.g. reliability.SchemaHallucinator):
        #: rewrites the assembled beam before the lint gate sees it.
        self.beam_perturber = beam_perturber
        options = options or PromptOptions()
        # The model's context length caps the prompt budget (Table 1:
        # CodeS-15B has the shorter 6,144-token context).
        from dataclasses import replace as _replace

        self.options = _replace(
            options,
            max_prompt_chars=min(
                options.max_prompt_chars, self.config.max_context_chars
            ),
        )
        self.lm = pretrained_lm_for(self.config)
        self.embedder = HashedNgramEmbedder(dim=self.config.embed_dim)
        self.extractor = SchemaFeatureExtractor(
            embedder=self.embedder,
            use_comments=self.options.include_comments,
        )
        self.classifier: SchemaItemClassifier | None = None
        self.seed = seed
        self._lexical_scorer = LexicalSchemaScorer(self.extractor)
        self._index: list[_IndexEntry] = []
        self._skeleton_bank: list[Query] = self._mine_skeleton_bank()
        self._builders: dict[tuple[int, int], PromptBuilder] = {}
        self._analyzers: dict[int, SemanticAnalyzer] = {}
        self._estimators: dict[int, CostEstimator] = {}

    # -- pre-training knowledge ----------------------------------------------

    def _mine_skeleton_bank(self) -> list[Query]:
        """Distinct SQL skeletons the model absorbed during pre-training."""
        counts: Counter[str] = Counter()
        representative: dict[str, Query] = {}
        for sql in self.lm.seen_sql:
            try:
                query = parse_sql(sql)
            except SQLSyntaxError:
                continue
            skeleton = skeleton_of_query(query)
            counts[skeleton] += 1
            representative.setdefault(skeleton, query)
        ranked = [skeleton for skeleton, _ in counts.most_common()]
        capacity = self.config.skeleton_capacity
        return [representative[skeleton] for skeleton in ranked[:capacity]]

    @property
    def skeleton_bank_size(self) -> int:
        return len(self._skeleton_bank)

    def _knows_skeleton(self, template: Query) -> bool:
        """Did pre-training expose this SQL structure to the model?"""
        if not hasattr(self, "_skeleton_set"):
            self._skeleton_set = {
                skeleton_of_query(query) for query in self._skeleton_bank
            }
        return skeleton_of_query(template) in self._skeleton_set

    # -- supervised fine-tuning ------------------------------------------------

    def fit(
        self,
        samples: list[tuple[Text2SQLExample, Database]],
        classifier_epochs: int = 30,
        use_external_knowledge: bool = False,
    ) -> None:
        """SFT: index the training templates and train the schema classifier."""
        if not samples:
            raise TrainingError("cannot fine-tune on an empty training set")
        entries: list[_IndexEntry] = []
        linking: list[LinkingExample] = []
        for example, database in samples:
            question = (
                example.question_with_knowledge()
                if use_external_knowledge
                else example.question
            )
            try:
                template = parse_sql(example.sql)
            except SQLSyntaxError:
                continue
            entries.append(
                _IndexEntry(
                    question=question,
                    template=template,
                    question_vec=self.embedder.embed(question),
                    pattern_vec=self.embedder.embed(extract_pattern(question)),
                )
            )
            try:
                linking.append(
                    LinkingExample.from_sql(question, database.schema, example.sql)
                )
            except TrainingError:
                continue
        if not entries:
            raise TrainingError("no parseable training SQL found")
        self._index = entries
        self.classifier = SchemaItemClassifier(
            extractor=self.extractor, seed=self.seed
        )
        self.classifier.fit(linking, epochs=classifier_epochs, seed=self.seed)

    @property
    def fine_tuned(self) -> bool:
        return self.classifier is not None and bool(self._index)

    # -- checkpointing -------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the fine-tuned state (.npz): index + classifier.

        Pre-training state is derived deterministically from the model
        name, so only the SFT artifacts need to be stored.
        """
        import json

        import numpy as np

        if not self.fine_tuned:
            raise CheckpointError("cannot save a parser that was not fine-tuned")
        index_payload = [
            {"question": entry.question, "sql": serialize(entry.template)}
            for entry in self._index
        ]
        meta = {
            "model": self.config.name,
            "use_pattern_similarity": self.use_pattern_similarity,
            "seed": self.seed,
        }
        state = self.classifier.model.state_dict()
        np.savez(
            path,
            meta=json.dumps(meta),
            index=json.dumps(index_payload),
            **{f"clf_{key}": value for key, value in state.items()},
        )

    @classmethod
    def load(cls, path: str, options: PromptOptions | None = None) -> "CodeSParser":
        """Restore a parser saved with :meth:`save`."""
        import json

        import numpy as np

        try:
            archive = np.load(path, allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
        meta = json.loads(str(archive["meta"]))
        parser = cls(
            meta["model"],
            options=options,
            seed=int(meta["seed"]),
            use_pattern_similarity=bool(meta["use_pattern_similarity"]),
        )
        entries: list[_IndexEntry] = []
        for item in json.loads(str(archive["index"])):
            template = parse_sql(item["sql"])
            question = item["question"]
            entries.append(
                _IndexEntry(
                    question=question,
                    template=template,
                    question_vec=parser.embedder.embed(question),
                    pattern_vec=parser.embedder.embed(extract_pattern(question)),
                )
            )
        parser._index = entries
        parser.classifier = SchemaItemClassifier(
            extractor=parser.extractor, seed=parser.seed
        )
        parser.classifier.model.load_state_dict(
            {
                key[len("clf_"):]: archive[key]
                for key in archive.files
                if key.startswith("clf_")
            }
        )
        parser.classifier.trained = True
        return parser

    # -- prompt construction ----------------------------------------------------

    def _builder_for(self, database: Database) -> PromptBuilder:
        key = (id(database), id(self.options))
        if key not in self._builders:
            self._builders[key] = PromptBuilder(
                database, classifier=self.classifier, options=self.options
            )
        return self._builders[key]

    def _analyzer_for(self, database: Database) -> SemanticAnalyzer:
        """The (cached) semantic analyzer over the database's full schema.

        The catalog deliberately uses the *unfiltered* schema: the
        prompt's filtered view drops low-scoring columns, and a beam
        candidate referencing a real-but-unprompted column is valid SQL,
        not a hallucination.
        """
        key = id(database)
        if key not in self._analyzers:
            self._analyzers[key] = SemanticAnalyzer(
                SchemaCatalog.from_database(database)
            )
        return self._analyzers[key]

    def _estimator_for(self, database: Database) -> CostEstimator:
        """The (cached) static cost estimator, sharing the analyzer's catalog."""
        key = id(database)
        if key not in self._estimators:
            self._estimators[key] = CostEstimator(self._analyzer_for(database).catalog)
        return self._estimators[key]

    # -- template retrieval ------------------------------------------------------

    def _entries_from(self, examples: list[Text2SQLExample]) -> list[_IndexEntry]:
        entries = []
        for example in examples:
            try:
                template = parse_sql(example.sql)
            except SQLSyntaxError:
                continue
            entries.append(
                _IndexEntry(
                    question=example.question,
                    template=template,
                    question_vec=self.embedder.embed(example.question),
                    pattern_vec=self.embedder.embed(
                        extract_pattern(example.question)
                    ),
                )
            )
        return entries

    def _retrieve_templates(
        self, question: str, entries: list[_IndexEntry], top_n: int
    ) -> list[tuple[Query, float]]:
        """Top templates by Eq. 4 similarity, diversified by skeleton.

        Near-duplicate templates waste beam slots, so at most two
        entries per SQL skeleton survive.
        """
        if not entries:
            return []
        question_vec = self.embedder.embed(question)
        pattern_vec = self.embedder.embed(extract_pattern(question))
        scored = []
        for entry in entries:
            sim = float(entry.question_vec @ question_vec)
            if self.use_pattern_similarity:
                sim = max(sim, float(entry.pattern_vec @ pattern_vec))
            scored.append((entry.template, sim))
        scored.sort(key=lambda pair: -pair[1])
        diverse: list[tuple[Query, float]] = []
        per_skeleton: Counter[str] = Counter()
        for template, sim in scored:
            skeleton = skeleton_of_query(template)
            if per_skeleton[skeleton] >= 2:
                continue
            per_skeleton[skeleton] += 1
            diverse.append((template, sim))
            if len(diverse) >= top_n:
                break
        return diverse

    # -- generation ----------------------------------------------------------------

    def generate(
        self,
        question: str,
        database: Database,
        demonstrations: list[Text2SQLExample] | None = None,
        external_knowledge: str = "",
        degrade: bool = True,
    ) -> GenerationResult:
        """Translate ``question`` into SQL for ``database``.

        With ``demonstrations`` the parser runs in few-shot ICL mode
        (templates come from the demonstrations plus the pre-training
        skeleton bank); otherwise it uses the SFT index built by
        :meth:`fit`.

        With ``degrade`` (the default) generation never raises for an
        unanswerable question: it falls through the beam to the
        skeleton-bank fallback and finally the safe sentinel, reporting
        the answering tier on :attr:`GenerationResult.tier`.  Pass
        ``degrade=False`` to restore the strict behaviour that raises
        :class:`GenerationError` when no candidate can be built.
        """
        # External knowledge clarifies *schema linking* ("'title' refers
        # to book.t2"); it is not part of the user's ask, so literal
        # extraction and template retrieval stay on the bare question.
        linking_question = question
        if external_knowledge:
            linking_question = f"{question} ({external_knowledge})"
        builder = self._builder_for(database)
        prompt = builder.build(question, linking_question=linking_question)
        matched = list(prompt.matched_values)

        lexical = self._lexical_scorer.score_schema(
            linking_question, prompt.schema, matched
        )
        if self.classifier is not None and self.classifier.trained:
            learned = self.classifier.score_schema(
                linking_question, prompt.schema, matched
            )
            # Surface evidence (names, comments, matched values) backs up
            # the trained classifier: on schemas unlike the training
            # distribution (renamed columns, new domains) the classifier
            # is blind where the lexical signal still reads the comments.
            scores = _blend_scores(learned, lexical)
        else:
            scores = lexical

        representative = None
        if self.options.include_representative_values:
            representative = builder._representative
        ctx = InstantiationContext(
            question=question,
            schema=prompt.schema,
            scores=scores,
            matched_values=matched,
            use_types=self.options.include_column_types,
            slot_depth=self.config.slot_depth,
            representative=representative,
        )

        in_context_mode = demonstrations is not None
        if in_context_mode:
            entries = self._entries_from(demonstrations)
        else:
            entries = self._index
        top_n = 2 + self.config.slot_depth
        templates = self._retrieve_templates(question, entries, top_n)
        if in_context_mode:
            # Without fine-tuning, a model can only reliably *produce*
            # SQL structures it absorbed during pre-training; templates
            # outside its skeleton bank are heavily discounted.  This is
            # where incremental pre-training pays off at inference time.
            templates = [
                (template, sim if self._knows_skeleton(template) else 0.35 * sim)
                for template, sim in templates
            ]
        # The pre-training skeleton bank backs up sparse demonstrations;
        # with no demonstrations at all (zero-shot), or only weakly
        # matching ones, the model falls back on its whole structural
        # repertoire, ranked by how well each skeleton's structure
        # matches the question's cues.
        best_sim = max((sim for _, sim in templates), default=0.0)
        if templates and best_sim >= 0.45:
            bank_quota = max(1, self.config.slot_depth)
        else:
            bank_quota = max(12, 6 * self.config.slot_depth)
        for template in self._skeleton_bank[:bank_quota]:
            prior = structure_prior(question, template)
            templates.append((template, 0.35 * prior))

        candidates: list[tuple[str, float]] = []
        seen: set[str] = set()
        for template, retrieval_sim in templates:
            for candidate in instantiate_template(template, ctx):
                filled = candidate.query
                sql = serialize(filled)
                key = sql.lower()
                if key in seen:
                    continue
                seen.add(key)
                used = filled.columns_used()
                link_quality = (
                    sum(scores.columns.get(col, 0.0) for col in used) / len(used)
                    if used
                    else 0.0
                )
                tables = filled.tables_used()
                table_quality = (
                    sum(scores.tables.get(name, 0.0) for name in tables) / len(tables)
                    if tables
                    else 0.0
                )
                score = (
                    2.0 * retrieval_sim
                    + 0.5 * link_quality
                    + 0.4 * table_quality
                    + 0.08 * self.lm.score(sql)
                    + 0.25 * _value_bonus(filled, matched)
                    - 0.1 * _projection_filter_overlap(filled)
                    - 0.5 * _count_mismatch(filled, question)
                    - 0.3 * candidate.ungrounded_literals
                )
                candidates.append((sql, score))
        if not candidates and not degrade:
            raise GenerationError(
                f"no SQL candidate could be built for question {question!r}"
            )
        candidates.sort(key=lambda pair: -pair[1])
        beam = [sql for sql, _ in candidates[: self.config.beam_size]]
        if self.beam_perturber is not None and beam:
            beam = list(self.beam_perturber(beam))

        # Lint gate: statically dirty candidates sink below clean ones,
        # so the execution-guided loop spends round-trips on SQL that at
        # least references the schema it claims to.
        lint: dict[str, tuple[Diagnostic, ...]] = {}
        if self.lint_gate and beam:
            ordered, lint = lint_gated_order(beam, self._analyzer_for(database))
        else:
            ordered = beam
        demoted = {sql for sql, diags in lint.items() if has_errors(diags)}

        # Equivalence dedup: canonically-equal candidates execute
        # identically, so each class costs at most one round-trip —
        # spent on its statically cheapest member.  Grouping runs on the
        # linted order, so classes inherit the gate's clean-first rank.
        if self.equivalence_dedup and ordered:
            estimator = self._estimator_for(database)
            groups: list[list[str]] = []
            group_of: dict[str, int] = {}
            for sql in ordered:
                group_key = canonical_key_sql(sql)
                if group_key in group_of:
                    groups[group_of[group_key]].append(sql)
                else:
                    group_of[group_key] = len(groups)
                    groups.append([sql])
            beam_deduped = len(ordered) - len(groups)
            representatives = [
                min(group, key=estimator.estimate_sql) for group in groups
            ]
        else:
            groups = [[sql] for sql in ordered]
            beam_deduped = 0
            representatives = [group[0] for group in groups]

        # Degradation ladder: execution-guided beam -> skeleton-bank
        # fallback -> safe sentinel.  Each tier only answers when the
        # previous one produced nothing executable.
        chosen = None
        tier = "beam"
        executions_used = 0
        executed: set[str] = set()
        dedup_avoided = beam_deduped  # full fall-through skips every duplicate
        for group, representative in zip(groups, representatives):
            executions_used += 1
            executed.add(representative)
            if database.is_executable(representative):
                chosen = representative
                # Without dedup the loop would have stopped at this
                # class's first-ranked member; everything above it in
                # the linted order minus the classes actually executed
                # was saved by sharing executions.
                dedup_avoided = ordered.index(group[0]) - (executions_used - 1)
                break
        if chosen is None and degrade:
            chosen = self._skeleton_fallback(database, ctx)
            tier = "skeleton"
        if chosen is None:
            if degrade:
                chosen = SENTINEL_SQL
                tier = "sentinel"
            else:
                # Legacy behaviour: surface the best-ranked candidate
                # even though it does not execute.
                chosen = ordered[0]
                tier = "beam"
        # Executions avoided: demoted candidates that outranked the
        # winner in the raw beam (round-trips the ungated loop would
        # have spent) plus duplicates that shared a representative's
        # execution (round-trips the undeduped loop would have spent).
        executions_avoided = 0
        if tier == "beam" and chosen in beam:
            executions_avoided = sum(
                1
                for sql in beam[: beam.index(chosen)]
                if sql in demoted and sql not in executed
            )
        executions_avoided += dedup_avoided
        return GenerationResult(
            sql=chosen,
            executable=database.is_executable(chosen),
            candidates=tuple(ordered),
            prompt=prompt,
            tier=tier,
            diagnostics=lint.get(chosen, ()),
            lint_demoted=len(demoted),
            executions_used=executions_used,
            executions_avoided=executions_avoided,
            beam_deduped=beam_deduped,
        )

    def _skeleton_fallback(
        self, database: Database, ctx: InstantiationContext, max_templates: int = 24
    ) -> str | None:
        """First executable instantiation from the pre-training bank.

        The graceful-degradation middle tier: when no beam candidate
        executes, fall back on the model's structural repertoire alone
        and return the first instantiation the database accepts.
        """
        for template in self._skeleton_bank[:max_templates]:
            for candidate in instantiate_template(template, ctx):
                sql = serialize(candidate.query)
                if database.is_executable(sql):
                    return sql
        return None


def _blend_scores(learned, lexical):
    """Blend classifier probabilities with squashed lexical evidence."""
    import math

    from repro.linking.classifier import SchemaScores

    def squash(value: float) -> float:
        return 1.0 / (1.0 + math.exp(-(value - 1.2)))

    return SchemaScores(
        tables={
            name: max(score, squash(lexical.tables.get(name, 0.0)))
            for name, score in learned.tables.items()
        },
        columns={
            key: max(score, squash(lexical.columns.get(key, 0.0)))
            for key, score in learned.columns.items()
        },
    )


def _predicate_bindings(query: Query) -> list[tuple[str, object]]:
    """(column key, literal value) pairs of equality/IN predicates."""
    from repro.sqlgen.ast import (
        BinaryCondition, ColumnRef, CompoundCondition, InCondition, Literal,
    )

    bindings: list[tuple[str, object]] = []

    def visit(cond) -> None:
        if isinstance(cond, BinaryCondition):
            if (
                cond.op == "="
                and isinstance(cond.left, ColumnRef)
                and isinstance(cond.right, Literal)
            ):
                bindings.append((cond.left.key(), cond.right.value))
        elif isinstance(cond, InCondition):
            if isinstance(cond.expr, ColumnRef):
                for value in cond.values:
                    bindings.append((cond.expr.key(), value.value))
        elif isinstance(cond, CompoundCondition):
            for sub in cond.conditions:
                visit(sub)

    current = query
    while current is not None:
        if current.where is not None:
            visit(current.where)
        current = current.compound_query
    return bindings


def _value_bonus(query: Query, matched) -> float:
    """Reward candidates whose predicates bind a retrieved value to the
    column it was actually found in."""
    if not matched:
        return 0.0
    matched_keys = {
        (f"{m.table.lower()}.{m.column.lower()}", m.value) for m in matched
    }
    for column_key, value in _predicate_bindings(query):
        if (column_key, value) in matched_keys:
            return 1.0
    return 0.0


_COUNT_CUES = re.compile(r"\b(how many|number of|count|tally)\b", re.IGNORECASE)


def _count_mismatch(query: Query, question: str) -> float:
    """1.0 when the candidate's COUNT-ness contradicts the question.

    Bare COUNT(*) projections should answer counting questions; a
    question without a counting cue should not be answered by a count,
    and vice versa (unless the count rides along a GROUP BY).
    """
    from repro.sqlgen.ast import Aggregation

    has_cue = bool(_COUNT_CUES.search(question))
    is_bare_count = (
        len(query.select_items) == 1
        and isinstance(query.select_items[0].expr, Aggregation)
        and query.select_items[0].expr.func == "count"
        and not query.group_by
    )
    if is_bare_count and not has_cue:
        return 1.0
    return 0.0


def _projection_filter_overlap(query: Query) -> float:
    """1.0 when a projected column is also equality-filtered.

    Users rarely ask to display the very attribute they constrained to a
    single value, so such candidates are slightly demoted.
    """
    from repro.sqlgen.ast import ColumnRef

    projected = {
        item.expr.key()
        for item in query.select_items
        if isinstance(item.expr, ColumnRef) and item.expr.column != "*"
    }
    filtered = {column_key for column_key, _ in _predicate_bindings(query)}
    return float(bool(projected & filtered))
