"""Question-pattern-aware demonstration retriever (§8.2).

Scores a candidate demonstration by the *maximum* of the raw-question
similarity and the entity-stripped question-*pattern* similarity
(Equation 4), so demonstrations that share structure win even when
their entities differ ("singers born in 1948 or 1949" matches "members
from either 'United States' or 'Canada'").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.datasets.base import Text2SQLExample
from repro.text.embedder import HashedNgramEmbedder
from repro.text.pattern import extract_pattern


@dataclass(frozen=True)
class ScoredDemonstration:
    """One retrieved demonstration with its similarity score."""

    example: Text2SQLExample
    score: float


class DemonstrationRetriever:
    """Retrieves the K most useful demonstrations from a training pool.

    ``mode`` selects the ablation arm:

    - ``"pattern-aware"`` — max(question sim, pattern sim) (the paper's
      retriever);
    - ``"question-only"`` — raw question similarity only
      (the "-w/o pattern similarity" arm of Table 9);
    - ``"random"`` — uniform selection
      (the "-w/o demonstration retriever" arm).
    """

    MODES = ("pattern-aware", "question-only", "random")

    def __init__(
        self,
        pool: list[Text2SQLExample],
        embedder: HashedNgramEmbedder | None = None,
        mode: str = "pattern-aware",
        seed: int = 0,
    ):
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {self.MODES}")
        self.pool = list(pool)
        self.embedder = embedder or HashedNgramEmbedder(dim=192)
        self.mode = mode
        self._rng = random.Random(seed)
        self._question_matrix = self.embedder.embed_batch(
            [example.question for example in self.pool]
        )
        self._pattern_matrix = self.embedder.embed_batch(
            [extract_pattern(example.question) for example in self.pool]
        )

    def retrieve(self, question: str, k: int = 3) -> list[ScoredDemonstration]:
        """Top-``k`` demonstrations for ``question`` (best first)."""
        if k <= 0 or not self.pool:
            return []
        if self.mode == "random":
            chosen = self._rng.sample(self.pool, min(k, len(self.pool)))
            return [ScoredDemonstration(example, 0.0) for example in chosen]
        question_vec = self.embedder.embed(question)
        question_sims = self._question_matrix @ question_vec
        if self.mode == "pattern-aware":
            pattern_vec = self.embedder.embed(extract_pattern(question))
            pattern_sims = self._pattern_matrix @ pattern_vec
            sims = np.maximum(question_sims, pattern_sims)
        else:
            sims = question_sims
        order = np.argsort(-sims, kind="mergesort")[:k]
        return [
            ScoredDemonstration(self.pool[index], float(sims[index]))
            for index in order
        ]
