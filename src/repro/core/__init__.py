"""The CodeS text-to-SQL parser: SFT, few-shot ICL, and generation.

Public entry point is :class:`CodeSParser`, which composes the prompt
builder (schema filter + value retriever + metadata), the skeleton
index, the slot-filling candidate generator, the LM-prior ranker and
the execution-guided beam — the full pipeline of the paper.
"""

from repro.core.retriever import DemonstrationRetriever
from repro.core.parser import CodeSParser, GenerationResult, lint_gated_order

__all__ = [
    "CodeSParser",
    "DemonstrationRetriever",
    "GenerationResult",
    "lint_gated_order",
]
