"""Candidate scoring heuristics and beam ordering.

These are the pure scoring functions the staged engine's ``rank`` and
``lint_gate`` stages apply: question-grounded bonuses/penalties over a
filled candidate AST, classifier/lexical score blending, and the
lint-gated beam reorder.  They live here — importable by both
:mod:`repro.core.parser` (the facade) and :mod:`repro.engine` (the
stages) — and carry no pipeline state of their own.
"""

from __future__ import annotations

import math
import re
from typing import Callable

from repro.analysis.analyzer import SemanticAnalyzer
from repro.analysis.diagnostics import Diagnostic, has_errors
from repro.linking.classifier import SchemaScores
from repro.sqlgen.ast import (
    Aggregation,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    InCondition,
    Literal,
    Query,
)

#: Last-resort SQL when every generation tier fails (always executable).
SENTINEL_SQL = "SELECT 1"


def lint_gated_order(
    beam: list[str],
    analyzer: SemanticAnalyzer,
    analyze: "Callable[[str], tuple[Diagnostic, ...]] | None" = None,
) -> tuple[list[str], dict[str, tuple[Diagnostic, ...]]]:
    """Reorder ``beam`` so statically clean candidates execute first.

    Candidates with error-tier diagnostics keep their relative ranking
    but sink below every clean candidate — they are still reachable
    (static analysis can be wrong; executability has the last word) but
    no longer burn execution round-trips ahead of plausible SQL.
    Returns the reordered beam plus each candidate's diagnostics.

    ``analyze`` overrides how one candidate's diagnostics are computed
    (the staged engine passes a per-database memo); it must behave
    exactly like ``tuple(analyzer.analyze_sql(sql))``.
    """
    if analyze is None:
        analyze = lambda sql: tuple(analyzer.analyze_sql(sql))  # noqa: E731
    diagnostics = {sql: analyze(sql) for sql in beam}
    clean = [sql for sql in beam if not has_errors(diagnostics[sql])]
    dirty = [sql for sql in beam if has_errors(diagnostics[sql])]
    return clean + dirty, diagnostics


def blend_scores(learned: SchemaScores, lexical: SchemaScores) -> SchemaScores:
    """Blend classifier probabilities with squashed lexical evidence."""

    def squash(value: float) -> float:
        return 1.0 / (1.0 + math.exp(-(value - 1.2)))

    return SchemaScores(
        tables={
            name: max(score, squash(lexical.tables.get(name, 0.0)))
            for name, score in learned.tables.items()
        },
        columns={
            key: max(score, squash(lexical.columns.get(key, 0.0)))
            for key, score in learned.columns.items()
        },
    )


def predicate_bindings(query: Query) -> list[tuple[str, object]]:
    """(column key, literal value) pairs of equality/IN predicates."""
    bindings: list[tuple[str, object]] = []

    def visit(cond) -> None:
        if isinstance(cond, BinaryCondition):
            if (
                cond.op == "="
                and isinstance(cond.left, ColumnRef)
                and isinstance(cond.right, Literal)
            ):
                bindings.append((cond.left.key(), cond.right.value))
        elif isinstance(cond, InCondition):
            if isinstance(cond.expr, ColumnRef):
                for value in cond.values:
                    bindings.append((cond.expr.key(), value.value))
        elif isinstance(cond, CompoundCondition):
            for sub in cond.conditions:
                visit(sub)

    current = query
    while current is not None:
        if current.where is not None:
            visit(current.where)
        current = current.compound_query
    return bindings


def value_bonus(query: Query, matched) -> float:
    """Reward candidates whose predicates bind a retrieved value to the
    column it was actually found in."""
    if not matched:
        return 0.0
    matched_keys = {
        (f"{m.table.lower()}.{m.column.lower()}", m.value) for m in matched
    }
    for column_key, value in predicate_bindings(query):
        if (column_key, value) in matched_keys:
            return 1.0
    return 0.0


_COUNT_CUES = re.compile(r"\b(how many|number of|count|tally)\b", re.IGNORECASE)


def count_mismatch(query: Query, question: str) -> float:
    """1.0 when the candidate's COUNT-ness contradicts the question.

    Bare COUNT(*) projections should answer counting questions; a
    question without a counting cue should not be answered by a count,
    and vice versa (unless the count rides along a GROUP BY).
    """
    has_cue = bool(_COUNT_CUES.search(question))
    is_bare_count = (
        len(query.select_items) == 1
        and isinstance(query.select_items[0].expr, Aggregation)
        and query.select_items[0].expr.func == "count"
        and not query.group_by
    )
    if is_bare_count and not has_cue:
        return 1.0
    return 0.0


def projection_filter_overlap(query: Query) -> float:
    """1.0 when a projected column is also equality-filtered.

    Users rarely ask to display the very attribute they constrained to a
    single value, so such candidates are slightly demoted.
    """
    projected = {
        item.expr.key()
        for item in query.select_items
        if isinstance(item.expr, ColumnRef) and item.expr.column != "*"
    }
    filtered = {column_key for column_key, _ in predicate_bindings(query)}
    return float(bool(projected & filtered))
