"""Zero-shot structure prior: match question cues to SQL skeletons.

Without demonstrations, a pre-trained model maps question phrasings to
the SQL structures it absorbed ("how many" -> COUNT, "for each" ->
GROUP BY, "above the average" -> scalar subquery).  This module scores
that mapping explicitly: a cue profile extracted from the question is
compared against the structural profile of a candidate skeleton.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    CompoundCondition,
    InCondition,
    LikeCondition,
    Query,
)

_CUE_PATTERNS: dict[str, re.Pattern] = {
    "count": re.compile(r"\b(how many|number of|count|tally)\b", re.IGNORECASE),
    "superlative": re.compile(
        r"\b(highest|lowest|largest|smallest|most|fewest|greatest|least|top \d+"
        r"|the \d+ )\b",
        re.IGNORECASE,
    ),
    "group": re.compile(r"\b(for each|per|of every|each)\b", re.IGNORECASE),
    "having": re.compile(
        r"\b(more than \d+|at least \d+|shared by)\b", re.IGNORECASE
    ),
    "or": re.compile(r"\b(or|either)\b", re.IGNORECASE),
    "between": re.compile(r"\b(between|from \d+ to \d+)\b", re.IGNORECASE),
    "like": re.compile(
        r"\b(starts? with|beginning with|letter)\b", re.IGNORECASE
    ),
    "average": re.compile(r"\b(average|mean)\b", re.IGNORECASE),
    "sum": re.compile(r"\b(total|sum|overall)\b", re.IGNORECASE),
    "distinct": re.compile(r"\b(different|distinct|unique)\b", re.IGNORECASE),
    "sorted": re.compile(r"\b(sorted|ordered|arranged|order(ed)? by)\b", re.IGNORECASE),
    "subquery_avg": re.compile(
        r"\b(above the average|below the average|higher than the average|"
        r"more than the average)\b",
        re.IGNORECASE,
    ),
    "relation": re.compile(
        r"\b(that have|that has|linked to|related to|with a|belonging to)\b",
        re.IGNORECASE,
    ),
}


@dataclass(frozen=True)
class StructureProfile:
    """Structural facts about one SQL skeleton."""

    bare_count: bool
    group_by: bool
    having: bool
    has_or: bool
    between: bool
    like: bool
    avg: bool
    sum_: bool
    distinct: bool
    order_by: bool
    order_with_limit: bool
    subquery: bool
    joins: bool


def profile_query(query: Query) -> StructureProfile:
    """Extract the structural profile of a query/skeleton."""
    has_or = False
    between = False
    like = False
    subquery = False

    def visit(cond) -> None:
        nonlocal has_or, between, like, subquery
        if isinstance(cond, CompoundCondition):
            if cond.op == "OR":
                has_or = True
            for sub in cond.conditions:
                visit(sub)
        elif isinstance(cond, BetweenCondition):
            between = True
        elif isinstance(cond, LikeCondition):
            like = True
        elif isinstance(cond, BinaryCondition) and isinstance(cond.right, Query):
            subquery = True
        elif isinstance(cond, InCondition) and cond.subquery is not None:
            subquery = True

    if query.where is not None:
        visit(query.where)
    select_aggs = [
        item.expr for item in query.select_items
        if isinstance(item.expr, Aggregation)
    ]
    bare_count = (
        len(query.select_items) == 1
        and bool(select_aggs)
        and select_aggs[0].func == "count"
        and not query.group_by
        and not select_aggs[0].distinct
    )
    return StructureProfile(
        bare_count=bare_count,
        group_by=bool(query.group_by),
        having=query.having is not None,
        has_or=has_or,
        between=between,
        like=like,
        avg=any(agg.func == "avg" for agg in select_aggs),
        sum_=any(agg.func == "sum" for agg in select_aggs),
        distinct=query.distinct
        or any(agg.distinct for agg in select_aggs),
        order_by=bool(query.order_by),
        order_with_limit=bool(query.order_by) and query.limit is not None,
        subquery=subquery,
        joins=bool(query.joins),
    )


def question_cues(question: str) -> set[str]:
    """Names of the cue patterns present in ``question``."""
    return {name for name, pattern in _CUE_PATTERNS.items()
            if pattern.search(question)}


#: cue name -> the profile attribute it predicts.
_CUE_TO_PROP = {
    "count": "bare_count",
    "superlative": "order_with_limit",
    "group": "group_by",
    "having": "having",
    "or": "has_or",
    "between": "between",
    "like": "like",
    "average": "avg",
    "sum": "sum_",
    "distinct": "distinct",
    "sorted": "order_by",
    "subquery_avg": "subquery",
    "relation": "joins",
}

#: Weaker cues whose absence shouldn't strongly penalize the structure.
_SOFT_CUES = frozenset({"relation", "sorted", "group", "or"})


def structure_prior(question: str, query: Query) -> float:
    """How plausibly ``query``'s structure answers ``question`` (0..1)."""
    cues = question_cues(question)
    profile = profile_query(query)
    score = 0.5
    for cue, prop in _CUE_TO_PROP.items():
        has_prop = getattr(profile, prop)
        if cue in cues:
            score += 0.12 if has_prop else -0.08
        elif has_prop:
            # Structure present without its cue: suspicious unless soft.
            score -= 0.04 if cue in _SOFT_CUES else 0.12
    # COUNT without a counting cue is the classic wrong answer.
    if profile.bare_count and "count" not in cues:
        score -= 0.15
    return max(0.05, min(0.95, score))
