"""Skeleton instantiation: map a template query onto a target schema.

Given a template SQL AST (from a retrieved demonstration, an SFT
training example, or the model's pre-training skeleton bank), this
module produces concrete candidate queries for the *target* database:

- template tables map to the highest-scoring target tables (schema
  linking scores from the classifier or the lexical scorer);
- template columns map to type-compatible columns of the assigned
  table, ranked by column score;
- string literals bind to retrieved database values (stored surface
  form!), quoted question spans, or capitalized entity spans;
- numeric literals bind to the numbers mentioned in the question;
- join conditions are rebuilt from foreign keys (or name-equality when
  key metadata is ablated away).

Each knob failure mode is a real error mode of the system: a missing
foreign key loses the join path, a missed value match produces a
predicate with the wrong surface form, a mis-ranked column selects the
wrong projection.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.db.schema import Column, Schema
from repro.linking.classifier import SchemaScores
from repro.retrieval.value_retriever import MatchedValue
from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    Condition,
    Expression,
    InCondition,
    JoinEdge,
    LikeCondition,
    Literal,
    NullCondition,
    OrderItem,
    Query,
    SelectItem,
    identifier_key,
)

_NUMBER_RE = re.compile(r"\d+(?:\.\d+)?")
_QUOTED_RE = re.compile(r"'([^']*)'|\"([^\"]*)\"")
_TOPK_RE = re.compile(r"\btop (\d+)\b|\bthe (\d+) \b|\b(\d+) most\b", re.IGNORECASE)
_LETTER_RE = re.compile(
    r"\b(?:letter|beginning with|starts? with(?: the letter)?)\s+([A-Za-z])\b"
)
_CAPITALIZED_SPAN_RE = re.compile(r"(?<!^)(?<![.?!]\s)\b([A-Z][a-z]+(?: [A-Z][a-z]+)*)\b")

_NUMERIC_TYPES = ("INTEGER", "REAL")
_TEXT_TYPES = ("TEXT", "DATE")

_GREATER_CUES = re.compile(
    r"\b(more than|greater|above|over|exceed\w*|higher|bigger|larger)\b", re.IGNORECASE
)
_GEQ_CUES = re.compile(r"\b(at least|no less than|or more)\b", re.IGNORECASE)
_LESS_CUES = re.compile(
    r"\b(less than|below|under|fewer|smaller|lower)\b", re.IGNORECASE
)
_DESC_PHRASES = re.compile(
    r"\b(largest to smallest|highest to lowest|biggest to smallest|"
    r"descending|decreasing)\b",
    re.IGNORECASE,
)
_ASC_PHRASES = re.compile(
    r"\b(smallest to largest|lowest to highest|ascending|increasing)\b",
    re.IGNORECASE,
)
_DESC_CUES = re.compile(
    r"\b(highest|largest|greatest|most|biggest|top)\b", re.IGNORECASE
)
_ASC_CUES = re.compile(r"\b(lowest|smallest|least|fewest)\b", re.IGNORECASE)
_AGG_CUES = (
    (re.compile(r"\b(average|mean)\b", re.IGNORECASE), "avg"),
    (re.compile(r"\b(maximum|highest|largest|greatest|biggest)\b", re.IGNORECASE), "max"),
    (re.compile(r"\b(minimum|lowest|smallest|least)\b", re.IGNORECASE), "min"),
    (re.compile(r"\b(total|sum|overall)\b", re.IGNORECASE), "sum"),
)


def question_comparison_op(question: str, default: str) -> str:
    """Comparison operator implied by the question's wording."""
    if _GEQ_CUES.search(question):
        return ">="
    if _GREATER_CUES.search(question):
        return ">"
    if _LESS_CUES.search(question):
        return "<"
    return default


def question_order_direction(question: str, default: bool) -> bool:
    """True for DESC, judged from superlative cues.

    Explicit multi-word order phrases ("smallest to largest") are
    checked before single superlatives, whose words they contain.
    """
    if _ASC_PHRASES.search(question):
        return False
    if _DESC_PHRASES.search(question):
        return True
    if _DESC_CUES.search(question):
        return True
    if _ASC_CUES.search(question):
        return False
    return default


def question_aggregate(question: str, default: str) -> str:
    """Aggregation function implied by the question (avg/max/min/sum)."""
    for pattern, func in _AGG_CUES:
        if pattern.search(question):
            return func
    return default


@dataclass
class InstantiationContext:
    """Everything slot filling needs about the target question/database."""

    question: str
    schema: Schema
    scores: SchemaScores
    matched_values: list[MatchedValue] = field(default_factory=list)
    use_types: bool = True
    slot_depth: int = 3
    representative: Optional[Callable[[str, str], list]] = None

    def ranked_tables(self) -> list[str]:
        ranked = self.scores.top_tables(len(self.schema.tables))
        known = {t.name.lower() for t in self.schema.tables}
        return [name for name in ranked if name in known]

    def ranked_columns(self, table_name: str) -> list[str]:
        table = self.schema.table(table_name)
        return self.scores.top_columns(table_name, len(table.columns))


def _question_numbers(question: str) -> list[float | int]:
    numbers: list[float | int] = []
    for raw in _NUMBER_RE.findall(question):
        numbers.append(float(raw) if "." in raw else int(raw))
    return numbers


def _question_strings(question: str) -> list[str]:
    """Literal string candidates in mention order (quoted, then entities)."""
    strings: list[str] = []
    for quoted in _QUOTED_RE.finditer(question):
        strings.append(quoted.group(1) or quoted.group(2))
    for span in _CAPITALIZED_SPAN_RE.finditer(question):
        text = span.group(1)
        if text not in strings:
            strings.append(text)
    return strings


class _Filler:
    """Fills one template under one (table assignment, variant) choice."""

    def __init__(
        self,
        ctx: InstantiationContext,
        table_map: dict[str, str],
        variant: int,
    ):
        self.ctx = ctx
        self.table_map = table_map
        self.variant = variant
        self._column_cache: dict[tuple[str, str], ColumnRef | None] = {}
        self._numbers = _question_numbers(ctx.question)
        self._strings = _question_strings(ctx.question)
        self._available_values = list(ctx.matched_values)
        self._used_columns: set[str] = set()
        #: Literal slots that had to fall back to template/DB defaults
        #: because nothing in the question grounded them.
        self.ungrounded = 0

    # -- table / column mapping ----------------------------------------------

    def _target_table(self, template_table: str) -> str | None:
        if template_table:
            return self.table_map.get(template_table.lower())
        # Unqualified columns belong to the template's only table.
        if len(self.table_map) == 1:
            return next(iter(self.table_map.values()))
        return None

    def _candidates(self, table_name: str, kind: str) -> list[Column]:
        table = self.ctx.schema.table(table_name)
        ranked_names = self.ctx.ranked_columns(table_name)
        ranked = [table.column(name) for name in ranked_names]
        if not self.ctx.use_types:
            return ranked
        if kind == "numeric":
            return [c for c in ranked if c.type.upper() in _NUMERIC_TYPES]
        if kind == "text":
            return [c for c in ranked if c.type.upper() in _TEXT_TYPES]
        return ranked

    def map_column(
        self, template_col: ColumnRef, kind: str = "any", role: str = ""
    ) -> ColumnRef | None:
        """Assign a target column to a template column slot.

        The cache is keyed by the template column alone so the same
        template column always maps to the same target column, no
        matter where it re-appears (SELECT vs WHERE vs ORDER BY).
        """
        cache_key = (template_col.key(), "")
        if cache_key in self._column_cache:
            return self._column_cache[cache_key]
        table_name = self._target_table(template_col.table)
        if table_name is None:
            self._column_cache[cache_key] = None
            return None
        candidates = self._candidates(table_name, kind)
        # Projection/grouping/aggregation slots should avoid raw key columns.
        if role in ("select", "group", "agg", "order") and len(candidates) > 1:
            non_keys = [
                c for c in candidates
                if not c.is_primary and not c.name.lower().endswith("_id")
            ]
            if non_keys:
                candidates = non_keys
        if not candidates:
            return None
        # Spread distinct template slots across distinct target columns.
        fresh = [c for c in candidates if f"{table_name}.{c.name.lower()}" not in
                 self._used_columns]
        pool = fresh or candidates
        index = min(self.variant, len(pool) - 1) if role == "select" else 0
        chosen = pool[index]
        ref = ColumnRef(table=table_name, column=chosen.name)
        self._used_columns.add(f"{table_name}.{chosen.name.lower()}")
        self._column_cache[cache_key] = ref
        return ref

    # -- literal binding -------------------------------------------------------

    def next_number(self, fallback: Literal) -> Literal:
        if self._numbers:
            return Literal(self._numbers.pop(0))
        self.ungrounded += 1
        return fallback

    def _pop_matched_value(self, table: str, column: str) -> MatchedValue | None:
        target = ColumnRef(table, column).key()
        table_key = identifier_key(table)
        same_column = [
            m for m in self._available_values
            if ColumnRef(m.table, m.column).key() == target
        ]
        pool = same_column or [
            m for m in self._available_values if identifier_key(m.table) == table_key
        ]
        if not pool:
            return None
        best = max(pool, key=lambda m: m.degree)
        self._available_values.remove(best)
        return best

    def bind_text_predicate(
        self, template_col: ColumnRef, fallback: Literal
    ) -> tuple[ColumnRef | None, Literal]:
        """Choose (column, value) for an equality predicate on text.

        Retrieved values pin both the column and the stored surface
        form; without them the question's spans fill the value slot.
        """
        table_name = self._target_table(template_col.table)
        if table_name is None:
            return None, fallback
        # A matched value in the assigned table is the strongest signal.
        preferred_col = self.map_column(template_col, kind="text", role="filter")
        match = self._pop_matched_value(
            table_name, preferred_col.column if preferred_col else ""
        )
        if match is not None:
            return (
                ColumnRef(table=match.table, column=match.column),
                Literal(match.value),
            )
        if preferred_col is None:
            return None, fallback
        if self._strings:
            surface = self._strings.pop(0)
            repaired = self._repair_value_format(
                surface, table_name, preferred_col.column
            )
            return preferred_col, Literal(repaired)
        self.ungrounded += 1
        if self.ctx.representative is not None:
            values = self.ctx.representative(table_name, preferred_col.column)
            values = [v for v in values if isinstance(v, str)]
            if values:
                return preferred_col, Literal(values[0])
        return preferred_col, fallback

    def _repair_value_format(self, surface: str, table: str, column: str) -> str:
        """Align a question-surface value with the column's stored format.

        The prompt's representative values (§6.3) show the model how the
        column actually stores data; when a stored value *contains* the
        question's mention ("Graz" -> "City of Graz", "F" -> "Female"),
        the stored form is copied.  Semantic re-expressions with no
        surface overlap ("approved" -> "granted") cannot be repaired —
        the sparse-retrieval weakness the paper reports on Dr.Spider's
        DBcontent-equivalence split.
        """
        from repro.retrieval.lcs import longest_common_substring

        if self.ctx.representative is None or not surface:
            return surface
        stored_values = [
            value
            for value in self.ctx.representative(table, column)
            if isinstance(value, str)
        ]
        if surface in stored_values:
            return surface
        best = None
        best_containment = 0.0
        for value in stored_values:
            shared = longest_common_substring(surface, value)
            containment = len(shared) / len(surface)
            if containment > best_containment:
                best_containment = containment
                best = value
        if best is not None and best_containment >= 0.8:
            return best
        return surface

    # -- query construction ------------------------------------------------

    def fill(self, template: Query) -> Query | None:
        select_items = []
        for item in template.select_items:
            expr = self._fill_select_expr(item.expr)
            if expr is None:
                return None
            select_items.append(SelectItem(expr=expr))
        from_table = self._target_table(template.from_table) or self._target_table("")
        if from_table is None:
            return None

        joins: list[JoinEdge] = []
        joined_tables = [from_table]
        for edge in template.joins:
            right_table = self._target_table(edge.table)
            if right_table is None or right_table in joined_tables:
                return None
            join = self._build_join(joined_tables, right_table)
            if join is None:
                return None
            joins.append(join)
            joined_tables.append(right_table)

        where = None
        if template.where is not None:
            where = self._fill_condition(template.where)
            if where is None:
                return None
        group_by = []
        for col in template.group_by:
            mapped = self.map_column(col, kind="any", role="group")
            if mapped is None:
                return None
            group_by.append(mapped)
        having = None
        if template.having is not None:
            having = self._fill_condition(template.having)
            if having is None:
                return None
        order_by = []
        for item in template.order_by:
            expr = self._fill_order_expr(item.expr)
            if expr is None:
                return None
            descending = question_order_direction(
                self.ctx.question, item.descending
            )
            order_by.append(OrderItem(expr=expr, descending=descending))

        limit = template.limit
        if limit is not None:
            match = _TOPK_RE.search(self.ctx.question)
            if match:
                limit = int(next(g for g in match.groups() if g))

        # GROUP BY must group by the non-aggregated projection when the
        # template does — keep them aligned.
        if group_by and select_items:
            plain = [
                item.expr for item in select_items
                if isinstance(item.expr, ColumnRef) and item.expr.column != "*"
            ]
            if plain and len(group_by) == 1:
                group_by = [plain[0]]

        return Query(
            select_items=tuple(select_items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=template.distinct,
        )

    def _build_join(self, left_tables: list[str], right_table: str) -> JoinEdge | None:
        for left_table in left_tables:
            fkey = self.ctx.schema.join_edge(left_table, right_table)
            if fkey is not None:
                if identifier_key(fkey.src_table) == identifier_key(right_table):
                    return JoinEdge(
                        table=right_table,
                        left=ColumnRef(fkey.dst_table, fkey.dst_column),
                        right=ColumnRef(fkey.src_table, fkey.src_column),
                    )
                return JoinEdge(
                    table=right_table,
                    left=ColumnRef(fkey.src_table, fkey.src_column),
                    right=ColumnRef(fkey.dst_table, fkey.dst_column),
                )
        # No key metadata: guess by shared column names.
        right = self.ctx.schema.table(right_table)
        for left_table in left_tables:
            left = self.ctx.schema.table(left_table)
            for column in left.columns:
                if right.has_column(column.name):
                    return JoinEdge(
                        table=right_table,
                        left=ColumnRef(left_table, column.name),
                        right=ColumnRef(right_table, column.name),
                    )
        return None

    def _fill_select_expr(self, expr: Expression) -> Expression | None:
        if isinstance(expr, ColumnRef):
            if expr.column == "*":
                return ColumnRef(table="", column="*")
            return self.map_column(expr, kind="any", role="select")
        if isinstance(expr, Aggregation):
            if expr.arg.column == "*":
                return Aggregation(expr.func, ColumnRef("", "*"), expr.distinct)
            func = expr.func
            if func in ("avg", "max", "min", "sum"):
                # Condition the aggregate on the question's wording.
                func = question_aggregate(self.ctx.question, func)
            kind = "numeric" if func in ("sum", "avg", "max", "min") else "any"
            arg = self.map_column(expr.arg, kind=kind, role="agg")
            if arg is None and kind == "numeric":
                arg = self.map_column(expr.arg, kind="any", role="agg")
            if arg is None:
                return None
            return Aggregation(func, arg, expr.distinct)
        if isinstance(expr, Literal):
            return expr
        return None

    def _fill_order_expr(self, expr: Expression) -> Expression | None:
        if isinstance(expr, ColumnRef):
            return self.map_column(expr, kind="numeric", role="order") or self.map_column(
                expr, kind="any", role="order"
            )
        if isinstance(expr, Aggregation):
            return self._fill_select_expr(expr)
        return None

    def _fill_condition(self, cond: Condition) -> Condition | None:
        if isinstance(cond, CompoundCondition):
            filled = []
            for sub in cond.conditions:
                result = self._fill_condition(sub)
                if result is None:
                    return None
                filled.append(result)
            return CompoundCondition(op=cond.op, conditions=tuple(filled))
        if isinstance(cond, BinaryCondition):
            return self._fill_binary(cond)
        if isinstance(cond, InCondition):
            return self._fill_in(cond)
        if isinstance(cond, BetweenCondition):
            column = self.map_column(cond.expr, kind="numeric", role="filter")
            if column is None:
                return None
            low = self.next_number(cond.low)
            high = self.next_number(cond.high)
            if isinstance(low.value, (int, float)) and isinstance(
                high.value, (int, float)
            ) and low.value > high.value:
                low, high = high, low
            return BetweenCondition(expr=column, low=low, high=high)
        if isinstance(cond, LikeCondition):
            column = self.map_column(cond.expr, kind="text", role="filter")
            if column is None:
                return None
            pattern = cond.pattern
            letter = _LETTER_RE.search(self.ctx.question)
            if letter:
                pattern = Literal(f"{letter.group(1).upper()}%")
            else:
                self.ungrounded += 1
            return LikeCondition(expr=column, pattern=pattern, negated=cond.negated)
        if isinstance(cond, NullCondition):
            column = self.map_column(cond.expr, kind="any", role="filter")
            if column is None:
                return None
            return NullCondition(expr=column, negated=cond.negated)
        return None

    def _fill_binary(self, cond: BinaryCondition) -> Condition | None:
        if isinstance(cond.right, Query):
            # Scalar subquery: map the inner query with the same filler.
            if not isinstance(cond.left, ColumnRef):
                return None
            left = self.map_column(cond.left, kind="numeric", role="filter")
            inner = self.fill(cond.right)
            if left is None or inner is None:
                return None
            return BinaryCondition(left=left, op=cond.op, right=inner)
        if isinstance(cond.left, Aggregation):
            agg = self._fill_select_expr(cond.left)
            if agg is None:
                return None
            right = cond.right
            op = cond.op
            if isinstance(right, Literal) and isinstance(right.value, (int, float)):
                right = self.next_number(right)
                if op in (">", "<", ">=", "<="):
                    op = question_comparison_op(self.ctx.question, op)
            return BinaryCondition(left=agg, op=op, right=right)
        if not isinstance(cond.left, ColumnRef):
            return None
        if isinstance(cond.right, Literal):
            if isinstance(cond.right.value, str):
                column, literal = self.bind_text_predicate(cond.left, cond.right)
                if column is None:
                    return None
                return BinaryCondition(left=column, op=cond.op, right=literal)
            column = self.map_column(cond.left, kind="numeric", role="filter")
            if column is None:
                return None
            op = cond.op
            if op in (">", "<", ">=", "<="):
                op = question_comparison_op(self.ctx.question, op)
            return BinaryCondition(
                left=column, op=op, right=self.next_number(cond.right)
            )
        if isinstance(cond.right, ColumnRef):
            left = self.map_column(cond.left, kind="any", role="filter")
            right = self.map_column(cond.right, kind="any", role="filter")
            if left is None or right is None:
                return None
            return BinaryCondition(left=left, op=cond.op, right=right)
        return None

    def _fill_in(self, cond: InCondition) -> Condition | None:
        if cond.subquery is not None:
            column = self.map_column(cond.expr, kind="any", role="filter")
            inner = self.fill(cond.subquery)
            if column is None or inner is None:
                return None
            return InCondition(
                expr=column, subquery=inner, negated=cond.negated
            )
        values: list[Literal] = []
        column: ColumnRef | None = None
        for value in cond.values:
            if isinstance(value.value, str):
                bound_col, literal = self.bind_text_predicate(cond.expr, value)
                column = column or bound_col
                values.append(literal)
            else:
                values.append(self.next_number(value))
                column = column or self.map_column(
                    cond.expr, kind="numeric", role="filter"
                )
        if column is None:
            return None
        return InCondition(expr=column, values=tuple(values), negated=cond.negated)


def _template_tables(template: Query) -> list[str]:
    """Distinct template tables in appearance order."""
    tables = [template.from_table.lower()]
    for edge in template.joins:
        if edge.table.lower() not in tables:
            tables.append(edge.table.lower())
    return tables


def _table_assignments(
    ctx: InstantiationContext, template_tables: list[str]
) -> list[dict[str, str]]:
    ranked = ctx.ranked_tables()
    if not ranked:
        return []
    depth = max(1, ctx.slot_depth)
    if len(template_tables) == 1:
        return [
            {template_tables[0]: table} for table in ranked[:depth]
        ]
    # Multi-table templates: prefer pairs connected by a join path.
    assignments: list[dict[str, str]] = []
    pool = ranked[: depth + 2]
    for first in pool:
        for second in pool:
            if first == second:
                continue
            has_fk = ctx.schema.join_edge(first, second) is not None
            if ctx.schema.foreign_keys and not has_fk:
                continue
            mapping = {template_tables[0]: first, template_tables[1]: second}
            for extra in template_tables[2:]:
                candidates = [t for t in pool if t not in mapping.values()]
                if not candidates:
                    break
                mapping[extra] = candidates[0]
            if len(mapping) == len(template_tables):
                assignments.append(mapping)
            if len(assignments) >= depth * 2:
                return assignments
    if not assignments and not ctx.schema.foreign_keys:
        # Without key metadata fall back to the naive top pairing.
        if len(pool) >= len(template_tables):
            assignments.append(dict(zip(template_tables, pool)))
    return assignments


@dataclass(frozen=True)
class FilledCandidate:
    """One instantiated candidate plus its grounding diagnostics."""

    query: Query
    ungrounded_literals: int


def instantiate_template(
    template: Query, ctx: InstantiationContext
) -> list[FilledCandidate]:
    """All candidate instantiations of ``template`` against the target.

    Returns up to ``slot_depth * assignments`` candidates, deduplicated,
    best-ranked table assignments first.
    """
    template_tables = _template_tables(template)
    candidates: list[FilledCandidate] = []
    seen: set[str] = set()
    for table_map in _table_assignments(ctx, template_tables):
        for variant in range(max(1, ctx.slot_depth)):
            filler = _Filler(ctx, table_map, variant)
            filled = filler.fill(template)
            if filled is None:
                continue
            from repro.sqlgen.serializer import serialize

            key = serialize(filled).lower()
            if key in seen:
                continue
            seen.add(key)
            candidates.append(
                FilledCandidate(query=filled, ungrounded_literals=filler.ungrounded)
            )
    return candidates
