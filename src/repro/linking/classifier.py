"""The schema-item classifier (§6.1).

A compact MLP predicts, per table and per column, the probability that
the item is needed to answer the question.  Labels for training come
straight from the gold SQL (the tables/columns it references), exactly
as in RESDSQL [36] which the paper follows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.schema import Schema
from repro.errors import SQLSyntaxError, TrainingError
from repro.eval.metrics import roc_auc
from repro.linking.features import FEATURE_DIM, SchemaFeatureExtractor
from repro.nn.mlp import MLPClassifier
from repro.retrieval.value_retriever import MatchedValue
from repro.sqlgen.parser import parse_sql


@dataclass(frozen=True)
class LinkingExample:
    """One supervised schema-linking example."""

    question: str
    schema: Schema
    gold_tables: frozenset[str]
    gold_columns: frozenset[str]
    matched_values: tuple[MatchedValue, ...] = ()

    @classmethod
    def from_sql(
        cls,
        question: str,
        schema: Schema,
        sql: str,
        matched_values: tuple[MatchedValue, ...] = (),
    ) -> "LinkingExample":
        """Derive gold table/column labels from the gold SQL query."""
        from repro.sqlgen.transform import qualify_columns

        try:
            query = qualify_columns(parse_sql(sql))
        except SQLSyntaxError as exc:
            raise TrainingError(f"gold SQL unparseable: {sql!r}") from exc
        return cls(
            question=question,
            schema=schema,
            gold_tables=frozenset(query.tables_used()),
            gold_columns=frozenset(query.columns_used()),
            matched_values=matched_values,
        )


@dataclass(frozen=True)
class SchemaScores:
    """Relevance scores for every table and column of one schema."""

    tables: dict[str, float]
    columns: dict[str, float]

    def top_tables(self, k: int) -> list[str]:
        ranked = sorted(self.tables.items(), key=lambda item: (-item[1], item[0]))
        return [name for name, _ in ranked[:k]]

    def top_columns(self, table_name: str, k: int) -> list[str]:
        prefix = table_name.lower() + "."
        ranked = sorted(
            (
                (key.split(".", 1)[1], score)
                for key, score in self.columns.items()
                if key.startswith(prefix)
            ),
            key=lambda item: (-item[1], item[0]),
        )
        return [name for name, _ in ranked[:k]]


class SchemaItemClassifier:
    """MLP over schema-linking features, one shared model for tables+columns."""

    def __init__(
        self,
        extractor: SchemaFeatureExtractor | None = None,
        hidden_dim: int = 16,
        seed: int = 0,
    ):
        self.extractor = extractor or SchemaFeatureExtractor()
        self.model = MLPClassifier(FEATURE_DIM, hidden_dim=hidden_dim, seed=seed)
        self.trained = False

    def with_extractor(
        self, extractor: SchemaFeatureExtractor
    ) -> "SchemaItemClassifier":
        """A scoring view of this classifier using another feature extractor.

        The view shares the trained MLP (``model`` is the same object),
        so serving paths can swap in a memoizing extractor without
        retraining or copying weights.  ``trained`` is snapshotted at
        view creation — build views after fitting (the engine's
        link-assets cache is cleared on ``CodeSParser.fit`` for exactly
        this reason).
        """
        view = SchemaItemClassifier.__new__(SchemaItemClassifier)
        view.extractor = extractor
        view.model = self.model
        view.trained = self.trained
        return view

    # -- training -----------------------------------------------------------

    def _build_training_matrix(
        self, examples: list[LinkingExample]
    ) -> tuple[np.ndarray, np.ndarray]:
        rows: list[np.ndarray] = []
        labels: list[float] = []
        for example in examples:
            matched = list(example.matched_values)
            for table in example.schema.tables:
                rows.append(self.extractor.table_features(example.question, table))
                labels.append(float(table.name.lower() in example.gold_tables))
                for column in table.columns:
                    rows.append(
                        self.extractor.column_features(
                            example.question, table, column, matched
                        )
                    )
                    key = f"{table.name.lower()}.{column.name.lower()}"
                    labels.append(float(key in example.gold_columns))
        if not rows:
            raise TrainingError("no schema items found in the training examples")
        return np.stack(rows), np.array(labels)

    def fit(
        self,
        examples: list[LinkingExample],
        epochs: int = 40,
        lr: float = 0.01,
        seed: int = 0,
    ) -> list[float]:
        """Train on supervised examples; returns the loss curve."""
        features, labels = self._build_training_matrix(examples)
        history = self.model.fit(features, labels, epochs=epochs, lr=lr, seed=seed)
        self.trained = True
        return history

    # -- inference ----------------------------------------------------------

    def score_schema(
        self,
        question: str,
        schema: Schema,
        matched_values: list[MatchedValue] | None = None,
    ) -> SchemaScores:
        """Relevance scores for every table and column."""
        table_rows: list[np.ndarray] = []
        column_rows: list[np.ndarray] = []
        table_names: list[str] = []
        column_keys: list[str] = []
        matched = list(matched_values or ())
        for table in schema.tables:
            table_rows.append(self.extractor.table_features(question, table))
            table_names.append(table.name.lower())
            for column in table.columns:
                column_rows.append(
                    self.extractor.column_features(question, table, column, matched)
                )
                column_keys.append(f"{table.name.lower()}.{column.name.lower()}")
        table_scores = self.model.predict_proba(np.stack(table_rows))
        column_scores = self.model.predict_proba(np.stack(column_rows))
        return SchemaScores(
            tables=dict(zip(table_names, table_scores.tolist())),
            columns=dict(zip(column_keys, column_scores.tolist())),
        )

    # -- evaluation ---------------------------------------------------------

    def evaluate_auc(self, examples: list[LinkingExample]) -> tuple[float, float]:
        """(table AUC, column AUC) on held-out examples — Table 3's metric."""
        table_labels: list[int] = []
        table_scores: list[float] = []
        column_labels: list[int] = []
        column_scores: list[float] = []
        for example in examples:
            scores = self.score_schema(
                example.question, example.schema, list(example.matched_values)
            )
            for name, score in scores.tables.items():
                table_labels.append(int(name in example.gold_tables))
                table_scores.append(score)
            for key, score in scores.columns.items():
                column_labels.append(int(key in example.gold_columns))
                column_scores.append(score)
        return (
            roc_auc(table_labels, table_scores),
            roc_auc(column_labels, column_scores),
        )
