"""Schema filter: keep the top-k1 tables and top-k2 columns (§6.1).

At inference time, tables and columns are ranked by the schema-item
classifier.  At training time (when the gold SQL is known) the used
tables/columns are kept and *padded* with randomly selected unused ones
up to k1/k2 so that train and test prompt distributions match — exactly
the padding trick the paper describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db.schema import ForeignKey, Schema, Table
from repro.linking.classifier import SchemaItemClassifier
from repro.retrieval.value_retriever import MatchedValue
from repro.sqlgen.ast import identifier_key
from repro.sqlgen.parser import parse_sql


@dataclass(frozen=True)
class FilteredSchema:
    """A reduced schema plus the ranking that produced it."""

    schema: Schema
    kept_tables: tuple[str, ...]
    kept_columns: dict[str, tuple[str, ...]]


def _project_schema(schema: Schema, keep: dict[str, list[str]]) -> Schema:
    """Build a sub-schema containing only the kept tables/columns."""
    tables: list[Table] = []
    for table in schema.tables:
        kept = keep.get(table.name.lower())
        if kept is None:
            continue
        kept_set = {name.lower() for name in kept}
        columns = tuple(
            column for column in table.columns if column.name.lower() in kept_set
        )
        if not columns:
            columns = table.columns[:1]
        tables.append(Table(name=table.name, columns=columns, comment=table.comment))
    by_key = {identifier_key(table.name): table for table in tables}
    foreign_keys: list[ForeignKey] = []
    for fkey in schema.foreign_keys:
        src = by_key.get(identifier_key(fkey.src_table))
        dst = by_key.get(identifier_key(fkey.dst_table))
        if src is not None and dst is not None:
            if src.has_column(fkey.src_column) and dst.has_column(fkey.dst_column):
                foreign_keys.append(fkey)
    return Schema(
        name=schema.name,
        tables=tuple(tables),
        foreign_keys=tuple(foreign_keys),
        domain=schema.domain,
    )


class SchemaFilter:
    """Classifier-driven schema reduction with train-time padding."""

    def __init__(
        self,
        classifier: SchemaItemClassifier | None = None,
        top_k1: int = 6,
        top_k2: int = 10,
    ):
        if top_k1 < 1 or top_k2 < 1:
            raise ValueError("top_k1 and top_k2 must be at least 1")
        self.classifier = classifier
        self.top_k1 = top_k1
        self.top_k2 = top_k2

    def filter(
        self,
        question: str,
        schema: Schema,
        matched_values: list[MatchedValue] | None = None,
    ) -> FilteredSchema:
        """Inference-time filtering driven by classifier scores.

        Without a trained classifier the lexical scorer ranks items
        (the zero-training path used by few-shot ICL).
        """
        if self.classifier is not None and self.classifier.trained:
            scores = self.classifier.score_schema(question, schema, matched_values)
        else:
            from repro.linking.lexical import LexicalSchemaScorer

            scores = LexicalSchemaScorer().score_schema(
                question, schema, matched_values
            )
        tables = scores.top_tables(self.top_k1)
        keep = {
            name: list(scores.top_columns(name, self.top_k2)) for name in tables
        }
        # Primary/foreign-key columns must survive filtering or the model
        # cannot generate JOIN clauses; re-add them where needed.
        keep = self._ensure_key_columns(schema, keep)
        projected = _project_schema(schema, keep)
        return FilteredSchema(
            schema=projected,
            kept_tables=tuple(keep),
            kept_columns={name: tuple(cols) for name, cols in keep.items()},
        )

    def filter_training(
        self, question: str, schema: Schema, gold_sql: str, seed: int = 0
    ) -> FilteredSchema:
        """Gold-driven filtering with random padding (train-time path)."""
        from repro.sqlgen.transform import qualify_columns

        del question  # labels come from the SQL, not the question
        query = qualify_columns(parse_sql(gold_sql))
        used_tables = [name for name in query.tables_used() if schema.has_table(name)]
        used_columns = query.columns_used()
        rng = random.Random(f"{seed}:{gold_sql}")

        all_tables = [t.name.lower() for t in schema.tables]
        unused = [name for name in all_tables if name not in used_tables]
        rng.shuffle(unused)
        tables = (used_tables + unused)[: max(self.top_k1, len(used_tables))]

        keep: dict[str, list[str]] = {}
        for table_name in tables:
            table = schema.table(table_name)
            used_here = [
                column.name
                for column in table.columns
                if f"{table.name.lower()}.{column.name.lower()}" in used_columns
            ]
            unused_here = [
                column.name for column in table.columns if column.name not in used_here
            ]
            rng.shuffle(unused_here)
            budget = max(self.top_k2, len(used_here))
            keep[table_name] = (used_here + unused_here)[:budget]
        keep = self._ensure_key_columns(schema, keep)
        projected = _project_schema(schema, keep)
        return FilteredSchema(
            schema=projected,
            kept_tables=tuple(keep),
            kept_columns={name: tuple(cols) for name, cols in keep.items()},
        )

    def _ensure_key_columns(
        self, schema: Schema, keep: dict[str, list[str]]
    ) -> dict[str, list[str]]:
        result = {name: list(cols) for name, cols in keep.items()}
        for table_name, columns in result.items():
            table = schema.table(table_name)
            lowered = {c.lower() for c in columns}
            primary = table.primary_key
            if primary is not None and primary.name.lower() not in lowered:
                columns.append(primary.name)
                lowered.add(primary.name.lower())
            for fkey in schema.foreign_keys_of(table_name):
                for side_table, side_column in (
                    (fkey.src_table, fkey.src_column),
                    (fkey.dst_table, fkey.dst_column),
                ):
                    other = (
                        fkey.dst_table
                        if identifier_key(side_table) == identifier_key(fkey.src_table)
                        else fkey.src_table
                    )
                    if (
                        identifier_key(side_table) == table_name
                        and other.lower() in result
                        and side_column.lower() not in lowered
                    ):
                        columns.append(side_column)
                        lowered.add(side_column.lower())
        return result
