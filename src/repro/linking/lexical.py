"""Untrained (lexical) schema scoring.

Few-shot in-context learning uses no fine-tuned schema classifier; the
model must link schema items from surface evidence alone.  This scorer
combines the same features the classifier consumes with fixed weights,
so the ICL pipeline has a deterministic, training-free ranking whose
sharpness still scales with the embedder width (a model-tier knob).
"""

from __future__ import annotations

import numpy as np

from repro.db.schema import Schema
from repro.linking.classifier import SchemaScores
from repro.linking.features import SchemaFeatureExtractor
from repro.retrieval.value_retriever import MatchedValue

#: Fixed feature weights: overlap and exact mentions dominate; comments
#: and value hits break ties; the trailing bias is ignored.
_WEIGHTS = np.array(
    [1.0, 0.6, 0.8, 0.7, 0.5, 1.2, 0.6, 0.0, 0.1, 0.9, 0.0]
)


class LexicalSchemaScorer:
    """Fixed-weight scorer over schema-linking features."""

    def __init__(self, extractor: SchemaFeatureExtractor | None = None):
        self.extractor = extractor or SchemaFeatureExtractor()

    def score_schema(
        self,
        question: str,
        schema: Schema,
        matched_values: list[MatchedValue] | None = None,
    ) -> SchemaScores:
        matched = list(matched_values or ())
        tables: dict[str, float] = {}
        columns: dict[str, float] = {}
        for table in schema.tables:
            features = self.extractor.table_features(question, table)
            tables[table.name.lower()] = float(features @ _WEIGHTS)
            for column in table.columns:
                features = self.extractor.column_features(
                    question, table, column, matched
                )
                key = f"{table.name.lower()}.{column.name.lower()}"
                columns[key] = float(features @ _WEIGHTS)
        return SchemaScores(tables=tables, columns=columns)
