"""Schema linking: feature extraction, item classifier, schema filter."""

from repro.linking.features import SchemaFeatureExtractor, FEATURE_DIM
from repro.linking.classifier import SchemaItemClassifier, SchemaScores
from repro.linking.schema_filter import FilteredSchema, SchemaFilter

__all__ = [
    "FEATURE_DIM",
    "FilteredSchema",
    "SchemaFeatureExtractor",
    "SchemaFilter",
    "SchemaItemClassifier",
    "SchemaScores",
]
