"""Features for the schema-item classifier.

Each (question, schema item) pair maps to a fixed-size vector of
lexical and semantic signals.  Comments enter the features exactly as
the paper prescribes for ambiguous schemas (§6.3): when a column name
like ``a2`` says nothing, its comment ("district name") still overlaps
with the question.
"""

from __future__ import annotations

import numpy as np

from repro.db.schema import Column, Table
from repro.retrieval.lcs import lcs_match_degree
from repro.retrieval.value_retriever import MatchedValue
from repro.sqlgen.ast import ColumnRef
from repro.text.embedder import HashedNgramEmbedder
from repro.text.similarity import jaccard_similarity, token_overlap
from repro.text.tokenize import sentence_tokens, stemmed_tokens

#: Size of the feature vector produced per schema item.
FEATURE_DIM = 11


def _readable(name: str) -> str:
    return name.replace("_", " ")


class SchemaFeatureExtractor:
    """Turns (question, table/column) pairs into feature vectors."""

    def __init__(self, embedder: HashedNgramEmbedder | None = None,
                 use_comments: bool = True):
        self.embedder = embedder or HashedNgramEmbedder(dim=128)
        self.use_comments = use_comments

    # Token-level primitives are instance methods so a memoizing
    # subclass can cache them; the base versions delegate unchanged.

    def _overlap(self, query: str, target: str) -> float:
        return token_overlap(query, target)

    def _jaccard(self, query: str, target: str) -> float:
        return jaccard_similarity(query, target)

    def _sentence_token_set(self, text: str) -> frozenset[str]:
        return frozenset(sentence_tokens(text))

    def _name_features(self, question: str, name: str, comment: str) -> list[float]:
        readable = _readable(name)
        question_tokens = self._sentence_token_set(question)
        name_tokens = self._sentence_token_set(readable)
        exact_mention = float(
            bool(name_tokens) and name_tokens <= question_tokens
        )
        comment_text = comment if self.use_comments else ""
        return [
            self._overlap(question, readable),
            self._jaccard(question, readable),
            self.embedder.similarity(question, readable),
            self._overlap(question, comment_text) if comment_text else 0.0,
            self.embedder.similarity(question, comment_text) if comment_text else 0.0,
            exact_mention,
            lcs_match_degree(question.lower(), readable.lower()),
            min(len(readable), 20) / 20.0,
        ]

    def table_features(self, question: str, table: Table) -> np.ndarray:
        """Feature vector for one table."""
        base = self._name_features(question, table.name, table.comment)
        column_overlaps = [
            self._overlap(question, _readable(column.name))
            for column in table.columns
        ]
        best_column = max(column_overlaps) if column_overlaps else 0.0
        return np.array([*base, 1.0, best_column, 1.0], dtype=np.float64)

    def column_features(
        self,
        question: str,
        table: Table,
        column: Column,
        matched_values: list[MatchedValue] | None = None,
    ) -> np.ndarray:
        """Feature vector for one column (optionally value-aware)."""
        base = self._name_features(question, column.name, column.comment)
        value_hit = 0.0
        target = ColumnRef(table.name, column.name).key()
        for match in matched_values or ():
            if ColumnRef(match.table, match.column).key() == target:
                value_hit = max(value_hit, match.degree)
        return np.array([*base, 0.0, value_hit, 1.0], dtype=np.float64)


class MemoizedSchemaFeatureExtractor(SchemaFeatureExtractor):
    """A feature extractor caching tokenizations and name features.

    Schema linking recomputes the same token sets and name-feature rows
    many times: every scoring pass touches every schema item, the
    question's tokens enter every pairwise signal, and a schema's item
    names never change between questions.  Caching (a) token sets per
    text and (b) whole ``_name_features`` rows per ``(question, name,
    comment)`` makes the repeats free — and because set intersections
    over the cached frozensets run the exact computation the module
    functions run, every feature value is bit-identical to the base
    extractor's.

    Intended to be scoped per database (the engine's link-assets
    bundle), so item-side entries stay warm across every question
    served on that schema.  ``capacity`` bounds each internal map with
    LRU eviction; ``None`` means unbounded.
    """

    def __init__(
        self,
        embedder: HashedNgramEmbedder | None = None,
        use_comments: bool = True,
        capacity: int | None = 8192,
    ):
        super().__init__(embedder=embedder, use_comments=use_comments)
        if capacity is not None and capacity < 1:
            raise ValueError(f"memo capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._stem_sets: dict[str, frozenset[str]] = {}
        self._sent_sets: dict[str, frozenset[str]] = {}
        self._rows: dict[tuple[str, str, str], list[float]] = {}

    def _cached(self, store: dict, key, factory):
        value = store.get(key)
        if value is not None:
            # LRU bookkeeping: re-insertion moves the key to the end.
            store[key] = store.pop(key)
            return value
        value = store[key] = factory()
        if self.capacity is not None and len(store) > self.capacity:
            store.pop(next(iter(store)))
        return value

    def _stem_set(self, text: str) -> frozenset[str]:
        return self._cached(
            self._stem_sets, text, lambda: frozenset(stemmed_tokens(text))
        )

    def _sentence_token_set(self, text: str) -> frozenset[str]:
        return self._cached(
            self._sent_sets, text, lambda: frozenset(sentence_tokens(text))
        )

    def _overlap(self, query: str, target: str) -> float:
        target_set = self._stem_set(target)
        if not target_set:
            return 0.0
        query_set = self._stem_set(query)
        return len(target_set & query_set) / len(target_set)

    def _jaccard(self, query: str, target: str) -> float:
        left_set = self._stem_set(query)
        right_set = self._stem_set(target)
        if not left_set and not right_set:
            return 1.0
        if not left_set or not right_set:
            return 0.0
        return len(left_set & right_set) / len(left_set | right_set)

    def _name_features(self, question: str, name: str, comment: str) -> list[float]:
        return self._cached(
            self._rows,
            (question, name, comment),
            lambda: super(MemoizedSchemaFeatureExtractor, self)._name_features(
                question, name, comment
            ),
        )
