"""Features for the schema-item classifier.

Each (question, schema item) pair maps to a fixed-size vector of
lexical and semantic signals.  Comments enter the features exactly as
the paper prescribes for ambiguous schemas (§6.3): when a column name
like ``a2`` says nothing, its comment ("district name") still overlaps
with the question.
"""

from __future__ import annotations

import numpy as np

from repro.db.schema import Column, Table
from repro.retrieval.lcs import lcs_match_degree
from repro.retrieval.value_retriever import MatchedValue
from repro.sqlgen.ast import ColumnRef
from repro.text.embedder import HashedNgramEmbedder
from repro.text.similarity import jaccard_similarity, token_overlap
from repro.text.tokenize import sentence_tokens

#: Size of the feature vector produced per schema item.
FEATURE_DIM = 11


def _readable(name: str) -> str:
    return name.replace("_", " ")


class SchemaFeatureExtractor:
    """Turns (question, table/column) pairs into feature vectors."""

    def __init__(self, embedder: HashedNgramEmbedder | None = None,
                 use_comments: bool = True):
        self.embedder = embedder or HashedNgramEmbedder(dim=128)
        self.use_comments = use_comments

    def _name_features(self, question: str, name: str, comment: str) -> list[float]:
        readable = _readable(name)
        question_tokens = set(sentence_tokens(question))
        name_tokens = set(sentence_tokens(readable))
        exact_mention = float(
            bool(name_tokens) and name_tokens <= question_tokens
        )
        comment_text = comment if self.use_comments else ""
        return [
            token_overlap(question, readable),
            jaccard_similarity(question, readable),
            self.embedder.similarity(question, readable),
            token_overlap(question, comment_text) if comment_text else 0.0,
            self.embedder.similarity(question, comment_text) if comment_text else 0.0,
            exact_mention,
            lcs_match_degree(question.lower(), readable.lower()),
            min(len(readable), 20) / 20.0,
        ]

    def table_features(self, question: str, table: Table) -> np.ndarray:
        """Feature vector for one table."""
        base = self._name_features(question, table.name, table.comment)
        column_overlaps = [
            token_overlap(question, _readable(column.name))
            for column in table.columns
        ]
        best_column = max(column_overlaps) if column_overlaps else 0.0
        return np.array([*base, 1.0, best_column, 1.0], dtype=np.float64)

    def column_features(
        self,
        question: str,
        table: Table,
        column: Column,
        matched_values: list[MatchedValue] | None = None,
    ) -> np.ndarray:
        """Feature vector for one column (optionally value-aware)."""
        base = self._name_features(question, column.name, column.comment)
        value_hit = 0.0
        target = ColumnRef(table.name, column.name).key()
        for match in matched_values or ():
            if ColumnRef(match.table, match.column).key() == target:
                value_hit = max(value_hit, match.degree)
        return np.array([*base, 0.0, value_hit, 1.0], dtype=np.float64)
