"""Sharded multi-process serving (PR 10).

A consistent-hash :class:`ShardMap` assigns database ids to workers; a
:class:`ShardRouter` admits centrally (rate limits, shard-aware
shedding) and dispatches to :class:`ShardWorker` processes that each
own warm per-shard engines, caches, and breakers.  Two transports share
one message protocol: inline handles for deterministic FakeClock tests,
forked process handles for real multi-core throughput.  Per-shard
metric snapshots fold into one cluster view via
:meth:`~repro.serving.metrics.ServerMetrics.merge`.
"""

from repro.serving.sharding.loadgen import (
    PROCESS_POLL_S,
    replay_sharded,
    run_loadgen_sharded,
)
from repro.serving.sharding.messages import (
    Drain,
    Drained,
    Heartbeat,
    HeartbeatAck,
    MetricsMsg,
    OutcomeMsg,
    Shutdown,
    SnapshotRequest,
    Submit,
    Warm,
    WorkerFailure,
    picklable_event,
)
from repro.serving.sharding.router import ShardingConfig, ShardRouter
from repro.serving.sharding.shardmap import (
    ShardMap,
    ShardMove,
    default_worker_ids,
)
from repro.serving.sharding.transport import (
    InlineWorkerHandle,
    ProcessWorkerHandle,
    WorkerHandle,
)
from repro.serving.sharding.worker import ShardWorker, worker_main

__all__ = [
    "Drain",
    "Drained",
    "Heartbeat",
    "HeartbeatAck",
    "InlineWorkerHandle",
    "MetricsMsg",
    "OutcomeMsg",
    "PROCESS_POLL_S",
    "ProcessWorkerHandle",
    "ShardMap",
    "ShardMove",
    "ShardRouter",
    "ShardWorker",
    "ShardingConfig",
    "Shutdown",
    "SnapshotRequest",
    "Submit",
    "Warm",
    "WorkerFailure",
    "WorkerHandle",
    "default_worker_ids",
    "picklable_event",
    "replay_sharded",
    "run_loadgen_sharded",
    "worker_main",
]
