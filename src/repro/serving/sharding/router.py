"""The shard router: central admission, dispatch, supervision, rebalance.

One :class:`ShardRouter` is the cluster's front door.  It admits or
sheds centrally (per-tenant token buckets, per-shard depth watermarks),
consults the consistent-hash :class:`~repro.serving.sharding.shardmap.
ShardMap` for the owning worker, and dispatches over the worker's
transport handle.  Everything time-shaped — heartbeat cadence, crash
deadlines, restart backoff — reads the injectable Clock, so the whole
cluster is deterministic on a FakeClock with inline handles and
genuinely parallel with process handles.

Supervision: the router probes workers with sequenced heartbeats; a
worker that reports dead (``handle.alive()``) or misses its ack
deadline is classified into :attr:`failures` and scheduled for a
breaker-style backoff restart.  Requests already dispatched to the
dead worker stay *pending* — they are re-dispatched after the restart
(at-least-once; duplicate outcomes are deduplicated by request id) —
and new arrivals for its shards park at the router until the worker
returns.  A worker that exhausts its restart budget fails its pending
requests with typed ``Failed`` outcomes: nothing resolves silently.

Rebalance: :meth:`rebalance` diffs the old and new maps, tells each
old owner to drain (it finishes every queued request and acks), hands
warm engines to inline peers / sends ``Warm`` to process peers, then
swaps the map.  No request is dropped: queued work completes on the
old owner, and arrivals during the swap follow the old map until the
swap is atomic-ly (single-threaded control loop) replaced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ServingError
from repro.reliability.clock import Clock, SYSTEM_CLOCK
from repro.serving.metrics import MetricsAggregator, ServerMetrics
from repro.serving.outcomes import Failed, Overloaded, RateLimited, ServeRequest
from repro.serving.ratelimit import TokenBucket
from repro.serving.sharding.messages import (
    Drain,
    Drained,
    Heartbeat,
    HeartbeatAck,
    MetricsMsg,
    OutcomeMsg,
    SnapshotRequest,
    Submit,
    Warm,
    WorkerFailure,
)
from repro.serving.sharding.shardmap import ShardMap


@dataclass(frozen=True)
class ShardingConfig:
    """Tuning knobs for the router (worker Servers carry their own)."""

    virtual_nodes: int = 64
    seed: int = 0
    #: Central per-tenant admission; ``None`` disables rate limiting.
    rate_per_tenant: float | None = None
    burst_per_tenant: float = 16.0
    #: Router-side per-shard watermark: a worker whose tracked queue
    #: depth reaches this sheds new arrivals ``Overloaded`` before
    #: dispatch — hot shards shed while cold shards keep admitting.
    #: ``None`` leaves shedding to each worker's own bounded queue.
    shed_depth: int | None = None
    #: How many arrivals may park for a down worker before shedding.
    park_capacity: int = 256
    heartbeat_interval_s: float = 1.0
    #: A sent heartbeat unacknowledged for this long marks the worker
    #: crashed even if its process object still claims to be alive.
    heartbeat_timeout_s: float = 3.0
    #: Breaker-style restart backoff: first restart after
    #: ``restart_backoff_s``, each subsequent one multiplied.
    restart_backoff_s: float = 0.5
    restart_backoff_multiplier: float = 2.0
    max_restarts_per_worker: int = 5
    #: Bound on waiting for Drained acks / metrics snapshots from
    #: process workers (real seconds; inline transport never waits).
    control_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.heartbeat_timeout_s < self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must be >= heartbeat_interval_s, got "
                f"{self.heartbeat_timeout_s} < {self.heartbeat_interval_s}"
            )
        if self.park_capacity < 1:
            raise ValueError(
                f"park_capacity must be >= 1, got {self.park_capacity}"
            )


@dataclass
class _WorkerState:
    """Router-side supervision bookkeeping for one worker."""

    depth: int = 0
    hb_seq: int = 0
    #: (seq, sent_at) of the unacknowledged probe, or None.
    hb_outstanding: "tuple[int, float] | None" = None
    last_beat_at: float = 0.0
    down: bool = False
    restarts: int = 0
    restart_due: float = 0.0
    lost: bool = False
    parked: list = field(default_factory=list)


class ShardRouter:
    """Admission + dispatch over N shard workers, one per shard set."""

    def __init__(
        self,
        shard_map: ShardMap,
        handle_factory: Callable[[str], object],
        db_ids: Iterable[str],
        config: ShardingConfig | None = None,
        clock: Clock | None = None,
    ):
        self.shard_map = shard_map
        self.config = config or ShardingConfig()
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.db_ids = frozenset(db_ids)
        self._handle_factory = handle_factory
        self.handles = {
            worker_id: handle_factory(worker_id)
            for worker_id in shard_map.workers
        }
        now = self.clock.now()
        self._states = {
            worker_id: _WorkerState(last_beat_at=now)
            for worker_id in shard_map.workers
        }
        #: request_id -> (request, worker_id) for dispatched, unresolved work.
        self._pending: dict[str, tuple[ServeRequest, str]] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._outcome_buffer: list = []
        self._drain_acks: set[str] = set()
        self._worker_metrics: dict[str, ServerMetrics] = {}
        self._retired_metrics: list[ServerMetrics] = []
        #: classified crash/restart incidents plus forwarded worker errors.
        self.failures: list[dict[str, object]] = []
        self.metrics_aggregator = MetricsAggregator()

    # -- admission and dispatch ----------------------------------------------

    def submit(self, request: ServeRequest):
        """Admit and dispatch ``request``, or shed it with a typed outcome.

        Mirrors :meth:`repro.serving.server.Server.submit`: ``None``
        means dispatched (the outcome arrives from a later
        :meth:`poll`), anything else is the immediate shed/failure.
        """
        if request.db_id not in self.db_ids:
            outcome = Failed(
                request=request,
                error=f"unknown database {request.db_id!r}",
                latency_s=0.0,
            )
            self.metrics_aggregator.record(outcome)
            return outcome
        if self.config.rate_per_tenant is not None:
            bucket = self._bucket_for(request.tenant)
            if not bucket.try_take():
                outcome = RateLimited(
                    request=request,
                    reason=f"tenant {request.tenant!r} exceeded "
                    f"{self.config.rate_per_tenant}/s",
                )
                self.metrics_aggregator.record(outcome)
                return outcome
        owner = self.shard_map.owner(request.db_id)
        state = self._states[owner]
        if state.lost:
            outcome = Failed(
                request=request,
                error=f"worker {owner!r} exhausted its restart budget",
                latency_s=0.0,
            )
            self.metrics_aggregator.record(outcome)
            return outcome
        if state.down:
            if len(state.parked) >= self.config.park_capacity:
                outcome = Overloaded(
                    request=request,
                    reason=f"worker {owner!r} down and park buffer full "
                    f"({self.config.park_capacity})",
                )
                self.metrics_aggregator.record(outcome)
                return outcome
            state.parked.append(request)
            self._pending[request.request_id] = (request, owner)
            return None
        if (
            self.config.shed_depth is not None
            and state.depth >= self.config.shed_depth
        ):
            # Shard-aware shedding: only the hot shard's arrivals shed;
            # a cold shard's state.depth is low and admits normally.
            outcome = Overloaded(
                request=request,
                reason=f"shard worker {owner!r} at depth {state.depth} "
                f">= {self.config.shed_depth}",
            )
            self.metrics_aggregator.record(outcome)
            return outcome
        self._dispatch(owner, request)
        return None

    def _dispatch(self, worker_id: str, request: ServeRequest) -> None:
        self._pending[request.request_id] = (request, worker_id)
        self._states[worker_id].depth += 1
        self.handles[worker_id].send(Submit(request=request))

    def _bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                rate=self.config.rate_per_tenant,
                burst=self.config.burst_per_tenant,
                clock=self.clock,
            )
        return bucket

    # -- event collection ----------------------------------------------------

    def poll(self) -> list:
        """Collect worker events; returns newly resolved outcomes."""
        self._collect()
        outcomes = self._outcome_buffer
        self._outcome_buffer = []
        return outcomes

    def pump(self) -> None:
        """Let inline workers drain their queues (process workers self-drain)."""
        for worker_id in sorted(self.handles):
            self.handles[worker_id].pump()

    def _collect(self) -> None:
        for worker_id in sorted(self.handles):
            for event in self.handles[worker_id].poll():
                self._on_event(worker_id, event)

    def _on_event(self, worker_id: str, event) -> None:
        if isinstance(event, OutcomeMsg):
            request_id = event.outcome.request.request_id
            entry = self._pending.pop(request_id, None)
            if entry is None:
                return  # duplicate after a crash re-dispatch; first wins
            state = self._states.get(worker_id)
            if state is not None:
                state.depth = max(0, state.depth - 1)
            self._outcome_buffer.append(event.outcome)
        elif isinstance(event, HeartbeatAck):
            state = self._states.get(worker_id)
            if state is None:
                return
            if (
                state.hb_outstanding is not None
                and event.seq == state.hb_outstanding[0]
            ):
                state.hb_outstanding = None
            state.last_beat_at = self.clock.now()
        elif isinstance(event, MetricsMsg):
            self._worker_metrics[worker_id] = event.snapshot
        elif isinstance(event, Drained):
            self._drain_acks.add(worker_id)
        elif isinstance(event, WorkerFailure):
            self.failures.append(
                {"worker": worker_id, "error": event.error, "kind": "worker"}
            )
        else:
            raise ServingError(
                f"unknown worker event {type(event).__name__} from {worker_id!r}"
            )

    # -- supervision ---------------------------------------------------------

    def tick(self) -> None:
        """One supervision pass: heartbeats, crash detection, restarts."""
        self._collect()
        now = self.clock.now()
        for worker_id in sorted(self.handles):
            state = self._states[worker_id]
            if state.lost:
                continue
            if state.down:
                if now >= state.restart_due:
                    self._restart(worker_id)
                continue
            handle = self.handles[worker_id]
            missed_deadline = (
                state.hb_outstanding is not None
                and now - state.hb_outstanding[1] >= self.config.heartbeat_timeout_s
            )
            if not handle.alive() or missed_deadline:
                self._mark_crashed(worker_id, missed_deadline)
                continue
            if (
                state.hb_outstanding is None
                and now - state.last_beat_at >= self.config.heartbeat_interval_s
            ):
                state.hb_seq += 1
                state.hb_outstanding = (state.hb_seq, now)
                handle.send(Heartbeat(seq=state.hb_seq))

    def _mark_crashed(self, worker_id: str, missed_deadline: bool) -> None:
        state = self._states[worker_id]
        state.restarts += 1
        # Fence a zombie: a worker that missed its heartbeat deadline
        # may still be alive (wedged, not dead).  Kill it now so the
        # restart can proceed and the old incarnation cannot emit late
        # events after its work is re-dispatched.
        handle = self.handles[worker_id]
        if handle.alive():
            kill = getattr(handle, "kill", None)
            if kill is not None:
                kill()
        cause = (
            "missed heartbeat deadline "
            f"({self.config.heartbeat_timeout_s}s)"
            if missed_deadline
            else "process dead"
        )
        self.failures.append(
            {
                "worker": worker_id,
                "error": cause,
                "kind": "crash",
                "restarts": state.restarts,
            }
        )
        if state.restarts > self.config.max_restarts_per_worker:
            state.lost = True
            self._fail_pending(
                worker_id,
                f"worker {worker_id!r} exhausted its restart budget "
                f"({self.config.max_restarts_per_worker})",
            )
            return
        # Breaker-style backoff: 1st restart after backoff, then *mult.
        delay = self.config.restart_backoff_s * (
            self.config.restart_backoff_multiplier ** (state.restarts - 1)
        )
        state.down = True
        state.restart_due = self.clock.now() + delay
        state.hb_outstanding = None
        state.depth = 0

    def _restart(self, worker_id: str) -> None:
        handle = self.handles[worker_id]
        if handle.alive() or not hasattr(handle, "restart"):
            # An unkillable zombie (no kill hook) or a transport with
            # no in-place restart: abandon the old handle and build a
            # fresh one — restart() on a live handle would raise.
            self.handles[worker_id] = self._handle_factory(worker_id)
        else:
            handle.restart()
        state = self._states[worker_id]
        state.down = False
        state.hb_outstanding = None
        state.last_beat_at = self.clock.now()
        state.depth = 0
        self.failures.append(
            {"worker": worker_id, "error": "restarted", "kind": "restart"}
        )
        # Re-dispatch everything the dead worker had in flight, then
        # the arrivals that parked while it was down.  At-least-once:
        # an outcome the old incarnation already sent for one of these
        # is deduplicated in _on_event by request id.
        redispatch = [
            request
            for request_id, (request, owner) in sorted(self._pending.items())
            if owner == worker_id and request not in state.parked
        ]
        parked, state.parked = state.parked, []
        for request in redispatch + parked:
            self._dispatch(worker_id, request)

    def _fail_pending(self, worker_id: str, reason: str) -> None:
        doomed = [
            request_id
            for request_id, (_, owner) in sorted(self._pending.items())
            if owner == worker_id
        ]
        for request_id in doomed:
            request, _ = self._pending.pop(request_id)
            outcome = Failed(request=request, error=reason, latency_s=0.0)
            self.metrics_aggregator.record(outcome)
            self._outcome_buffer.append(outcome)
        self._states[worker_id].parked = []

    def next_timer_due(self) -> float | None:
        """The earliest clock time supervision needs to run again.

        Discrete-event replay loops advance a FakeClock to this time
        when no arrivals are due — restarts and heartbeat deadlines
        fire without any wall-clock waiting.
        """
        candidates: list[float] = []
        for worker_id in sorted(self._states):
            state = self._states[worker_id]
            if state.lost:
                continue
            if state.down:
                candidates.append(state.restart_due)
            elif state.hb_outstanding is not None:
                candidates.append(
                    state.hb_outstanding[1] + self.config.heartbeat_timeout_s
                )
            else:
                candidates.append(
                    state.last_beat_at + self.config.heartbeat_interval_s
                )
        return min(candidates) if candidates else None

    def has_work(self) -> bool:
        """Unresolved requests anywhere (dispatched or parked)?"""
        return bool(self._pending)

    # -- rebalance -----------------------------------------------------------

    def rebalance(self, new_map: ShardMap) -> list:
        """Move to ``new_map`` without dropping a request.

        Old owners drain (finishing all queued work — those outcomes
        are returned), new owners warm, inline peers hand off warm
        engines, and only then does the map swap.  Workers leaving the
        cluster are snapshotted into the retired-metrics fold and shut
        down; anything they failed to resolve (a down owner cannot
        drain) is re-homed to the new owners first, so no request is
        left mapped to a departed worker.
        """
        moves = self.shard_map.moves(new_map, self.db_ids)
        added = [w for w in new_map.workers if w not in self.handles]
        removed = [w for w in self.shard_map.workers if w not in new_map.workers]
        now = self.clock.now()
        for worker_id in added:
            self.handles[worker_id] = self._handle_factory(worker_id)
            self._states[worker_id] = _WorkerState(last_beat_at=now)
        moved_from: dict[str, list[str]] = {}
        moved_to: dict[str, list[str]] = {}
        for move in moves:
            moved_from.setdefault(move.source, []).append(move.db_id)
            moved_to.setdefault(move.target, []).append(move.db_id)
        # 1. Old owners finish their queued work (a down/dead owner
        #    cannot drain; its leftovers are re-homed in step 3).
        sources = sorted(moved_from)
        self._drain_acks.clear()
        for worker_id in sources:
            if self._drainable(worker_id):
                self.handles[worker_id].send(
                    Drain(db_ids=tuple(moved_from[worker_id]))
                )
        outcomes = self._await_drains(sources)
        # 2. Warm handoff: inline peers adopt the old owner's engines;
        #    process peers pre-build via the Warm command.
        for move in moves:
            source = self.handles[move.source]
            target = self.handles[move.target]
            if hasattr(source, "worker") and hasattr(target, "worker"):
                target.worker.server.adopt(
                    move.db_id, source.worker.server.handoff(move.db_id)
                )
        for worker_id in sorted(moved_to):
            self.handles[worker_id].send(Warm(db_ids=tuple(moved_to[worker_id])))
        # 3. Swap; re-home any work a departing worker never resolved
        #    (it was down, or its Drained ack was missed), then retire.
        self.shard_map = new_map
        for worker_id in removed:
            self._rehome(worker_id)
            snapshot = self._snapshot_worker(worker_id)
            if snapshot is not None:
                self._retired_metrics.append(snapshot)
            self.handles[worker_id].close()
            del self.handles[worker_id]
            del self._states[worker_id]
            self._worker_metrics.pop(worker_id, None)
        return outcomes

    def _rehome(self, worker_id: str) -> None:
        """Re-route ``worker_id``'s unresolved requests under the
        current map, so removing it can never strand pending work.

        Each leftover goes to its new owner: dispatched if the owner
        is up, parked if the owner is down (capacity permitting), and
        resolved with a typed outcome otherwise — nothing stays mapped
        to a worker that no longer exists.
        """
        leftovers = [
            request
            for _, (request, owner) in sorted(self._pending.items())
            if owner == worker_id
        ]
        self._states[worker_id].parked = []
        for request in leftovers:
            owner = self.shard_map.owner(request.db_id)
            state = self._states[owner]
            if state.lost:
                self._pending.pop(request.request_id, None)
                outcome = Failed(
                    request=request,
                    error=f"worker {owner!r} exhausted its restart budget",
                    latency_s=0.0,
                )
                self.metrics_aggregator.record(outcome)
                self._outcome_buffer.append(outcome)
            elif state.down:
                if len(state.parked) >= self.config.park_capacity:
                    self._pending.pop(request.request_id, None)
                    outcome = Overloaded(
                        request=request,
                        reason=f"worker {owner!r} down and park buffer "
                        f"full ({self.config.park_capacity})",
                    )
                    self.metrics_aggregator.record(outcome)
                    self._outcome_buffer.append(outcome)
                else:
                    state.parked.append(request)
                    self._pending[request.request_id] = (request, owner)
            else:
                self._dispatch(owner, request)

    def _drainable(self, worker_id: str) -> bool:
        """Can this worker receive a Drain and be expected to ack it?"""
        state = self._states[worker_id]
        return (
            not state.down
            and not state.lost
            and self.handles[worker_id].alive()
        )

    def _await_drains(self, sources: list[str]) -> list:
        """Pump/poll until every *live* source acked its drain.

        A source that is down, lost, or dies mid-drain stops being
        awaited — a dead worker never acks, and waiting for one would
        burn the whole control timeout.  Its unresolved requests stay
        pending for supervision (or the caller) to recover.
        """
        outcomes: list = []
        deadline = self.clock.now() + self.config.control_timeout_s
        while True:
            self.pump()
            outcomes.extend(self.poll())
            waiting = [
                w
                for w in sources
                if w not in self._drain_acks and self._drainable(w)
            ]
            if not waiting:
                return outcomes
            if self.clock.now() >= deadline:
                raise ServingError(
                    f"drain timed out waiting for workers {waiting}"
                )
            # Process workers need real time to answer; inline workers
            # acked synchronously above, so this never runs on FakeClock
            # unless a worker genuinely hangs.
            self.clock.sleep(0.002)

    def drain(self) -> list:
        """Finish all queued work on every live worker; returns outcomes.

        Down/lost/dead workers are skipped — their requests stay
        pending (or parked) and the caller decides whether to keep
        ticking until supervision restarts them or to shut down.
        """
        workers = sorted(self.handles)
        self._drain_acks.clear()
        for worker_id in workers:
            if self._drainable(worker_id):
                self.handles[worker_id].send(Drain())
        return self._await_drains(workers)

    def shutdown(self) -> None:
        """Snapshot, then close every worker (clean Shutdown, bounded)."""
        for worker_id in sorted(self.handles):
            snapshot = self._snapshot_worker(worker_id)
            if snapshot is not None:
                self._retired_metrics.append(snapshot)
        for worker_id in sorted(self.handles):
            self.handles[worker_id].close()
        self.handles = {}
        self._states = {}

    # -- observability -------------------------------------------------------

    def _snapshot_worker(self, worker_id: str) -> ServerMetrics | None:
        """A fresh per-shard snapshot (synchronous inline, RPC process)."""
        handle = self.handles[worker_id]
        if hasattr(handle, "worker"):  # inline: no round trip needed
            return handle.worker.server.metrics()
        if not handle.alive():
            return self._worker_metrics.get(worker_id)
        self._worker_metrics.pop(worker_id, None)
        handle.send(SnapshotRequest())
        deadline = self.clock.now() + self.config.control_timeout_s
        while worker_id not in self._worker_metrics:
            self._collect()
            if worker_id in self._worker_metrics:
                break
            if self.clock.now() >= deadline or not handle.alive():
                return None
            self.clock.sleep(0.002)
        return self._worker_metrics.get(worker_id)

    def metrics(self) -> ServerMetrics:
        """One merged cluster snapshot: router sheds + every shard.

        Counters merge exactly and percentiles are recomputed from the
        pooled latency samples (:meth:`ServerMetrics.merge`) — never
        averaged.  Retired workers' final snapshots stay in the fold,
        so a rebalance does not lose history.
        """
        parked = sum(len(state.parked) for state in self._states.values())
        own = self.metrics_aggregator.snapshot(queue_depth=parked)
        shards = [
            snapshot
            for worker_id in sorted(self.handles)
            if (snapshot := self._snapshot_worker(worker_id)) is not None
        ]
        return ServerMetrics.merge(own, *shards, *self._retired_metrics)
