"""Consistent-hash shard assignment over database ids.

A :class:`ShardMap` places every worker at ``virtual_nodes`` seeded
points on a hash ring and assigns each ``db_id`` to the first worker
point clockwise of the database's own point.  Hashing uses
``blake2b`` over explicit strings, so ownership is a pure function of
``(workers, virtual_nodes, seed)`` — independent of PYTHONHASHSEED,
process, and platform — and the classic consistent-hashing property
holds: adding or removing one worker moves only the databases whose
ring arcs changed hands, which is what keeps rebalances cheap (only
the moved shards drain and re-warm).

Maps are immutable; :meth:`with_workers` / :meth:`add_worker` /
:meth:`remove_worker` derive new maps, and :meth:`moves` diffs two
maps into the explicit rebalance plan the router executes.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence


def _ring_point(seed: int, label: str) -> int:
    """A deterministic 64-bit ring position for ``label``."""
    digest = hashlib.blake2b(
        f"{seed}:{label}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class ShardMove:
    """One database changing owners between two shard maps."""

    db_id: str
    source: str
    target: str


class ShardMap:
    """Deterministic consistent-hash ring over worker ids."""

    def __init__(
        self,
        workers: Sequence[str],
        virtual_nodes: int = 64,
        seed: int = 0,
    ):
        if not workers:
            raise ValueError("a shard map needs at least one worker")
        if len(set(workers)) != len(workers):
            raise ValueError(f"duplicate worker ids in {list(workers)}")
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.workers: tuple[str, ...] = tuple(sorted(workers))
        self.virtual_nodes = virtual_nodes
        self.seed = seed
        # Ties on ring points (astronomically unlikely, but the map
        # must be total) break by worker id, keeping the ring a pure
        # function of the constructor arguments.
        ring = sorted(
            (_ring_point(seed, f"{worker}#{index}"), worker)
            for worker in self.workers
            for index in range(virtual_nodes)
        )
        self._points = [point for point, _ in ring]
        self._owners = [worker for _, worker in ring]

    # -- ownership -----------------------------------------------------------

    def owner(self, db_id: str) -> str:
        """The worker owning ``db_id`` — first ring point clockwise."""
        point = _ring_point(self.seed, f"db:{db_id}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignments(self, db_ids: Iterable[str]) -> dict[str, tuple[str, ...]]:
        """Per-worker sorted shard lists; every worker appears, even empty."""
        table: dict[str, list[str]] = {worker: [] for worker in self.workers}
        for db_id in sorted(set(db_ids)):
            table[self.owner(db_id)].append(db_id)
        return {worker: tuple(table[worker]) for worker in self.workers}

    # -- derivation ----------------------------------------------------------

    def with_workers(self, workers: Sequence[str]) -> "ShardMap":
        """A map over ``workers`` with this map's vnode count and seed."""
        return ShardMap(workers, virtual_nodes=self.virtual_nodes, seed=self.seed)

    def add_worker(self, worker_id: str) -> "ShardMap":
        if worker_id in self.workers:
            raise ValueError(f"worker {worker_id!r} already in the map")
        return self.with_workers((*self.workers, worker_id))

    def remove_worker(self, worker_id: str) -> "ShardMap":
        if worker_id not in self.workers:
            raise ValueError(f"worker {worker_id!r} not in the map")
        return self.with_workers(
            tuple(worker for worker in self.workers if worker != worker_id)
        )

    def moves(
        self, new_map: "ShardMap", db_ids: Iterable[str]
    ) -> tuple[ShardMove, ...]:
        """The databases that change owners going from this map to ``new_map``."""
        return tuple(
            ShardMove(db_id=db_id, source=self.owner(db_id), target=new_map.owner(db_id))
            for db_id in sorted(set(db_ids))
            if self.owner(db_id) != new_map.owner(db_id)
        )

    # -- identity ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return (
            self.workers == other.workers
            and self.virtual_nodes == other.virtual_nodes
            and self.seed == other.seed
        )

    def __hash__(self) -> int:
        return hash((self.workers, self.virtual_nodes, self.seed))

    def __repr__(self) -> str:
        return (
            f"ShardMap(workers={list(self.workers)}, "
            f"virtual_nodes={self.virtual_nodes}, seed={self.seed})"
        )


def default_worker_ids(n: int) -> tuple[str, ...]:
    """The canonical worker naming: ``w0 .. w{n-1}``."""
    if n < 1:
        raise ValueError(f"worker count must be >= 1, got {n}")
    return tuple(f"w{index}" for index in range(n))
