"""The typed message vocabulary between the shard router and workers.

Every frame crossing a worker boundary — an OS pipe for process
workers, a plain method call for inline workers — is one of these
frozen dataclasses.  They carry only plain data (requests, outcome
records, frozen metric snapshots), so the same protocol pickles across
the process boundary and stays trivially deterministic in inline mode.

Commands flow router → worker; events flow worker → router.  The
``Completed.trace`` field is stripped before an outcome crosses a real
process boundary (traces hold live engine objects); inline transport
keeps it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.metrics import ServerMetrics
    from repro.serving.outcomes import ServeRequest


# -- commands (router -> worker) ---------------------------------------------


@dataclass(frozen=True)
class Submit:
    """Dispatch one admitted request to its shard owner."""

    request: "ServeRequest"


@dataclass(frozen=True)
class Warm:
    """Pre-build engines/breakers for ``db_ids`` before traffic arrives.

    Sent to the *new* owner during a rebalance so the first real
    request after the map swap hits a warm engine, not a cold build.
    """

    db_ids: tuple[str, ...]


@dataclass(frozen=True)
class Drain:
    """Finish all queued work, then acknowledge with :class:`Drained`.

    ``db_ids`` names the shards being moved away (bookkeeping for the
    ack); the worker drains its whole queue either way — queued work is
    never abandoned mid-rebalance.
    """

    db_ids: tuple[str, ...] = ()


@dataclass(frozen=True)
class Heartbeat:
    """Liveness probe; the worker answers with :class:`HeartbeatAck`."""

    seq: int


@dataclass(frozen=True)
class SnapshotRequest:
    """Ask for a frozen :class:`~repro.serving.metrics.ServerMetrics`."""


@dataclass(frozen=True)
class Shutdown:
    """Stop the worker loop after the current step."""


# -- events (worker -> router) -----------------------------------------------


@dataclass(frozen=True)
class OutcomeMsg:
    """One terminal outcome for a previously submitted request."""

    worker_id: str
    outcome: object


@dataclass(frozen=True)
class HeartbeatAck:
    """Liveness answer, carrying the worker's current queue depth."""

    worker_id: str
    seq: int
    queue_depth: int


@dataclass(frozen=True)
class MetricsMsg:
    """A frozen per-shard metrics snapshot."""

    worker_id: str
    snapshot: "ServerMetrics"


@dataclass(frozen=True)
class Drained:
    """All queued work finished after a :class:`Drain` command."""

    worker_id: str
    db_ids: tuple[str, ...]


@dataclass(frozen=True)
class WorkerFailure:
    """A classified unexpected error from inside the worker loop."""

    worker_id: str
    error: str


def picklable_event(event: object) -> object:
    """Strip live objects (traces) from an event before pickling it."""
    if isinstance(event, OutcomeMsg) and getattr(event.outcome, "trace", None) is not None:
        return OutcomeMsg(
            worker_id=event.worker_id,
            outcome=replace(event.outcome, trace=None),
        )
    return event
