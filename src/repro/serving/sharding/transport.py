"""Worker transports: inline (deterministic) and process (parallel).

Both handle types speak the same message protocol from
:mod:`repro.serving.sharding.messages`; the router never branches on
transport except where physics differ (engine handoff only works
in-process; real parallelism only exists cross-process).

- :class:`InlineWorkerHandle` hosts the :class:`ShardWorker` on the
  caller's thread.  ``send`` processes the command synchronously and
  buffers the replies; ``pump`` drains the worker's queue.  On a
  FakeClock the whole cluster is a deterministic discrete-event
  system — the configuration every ``tests/test_sharding.py`` scenario
  runs, with zero wall-clock sleeps.

- :class:`ProcessWorkerHandle` forks a child running
  :func:`~repro.serving.sharding.worker.worker_main` and talks to it
  over a ``multiprocessing`` pipe.  The server is built inside the
  child by ``server_factory`` (fresh SQLite connections, warm engines
  per shard), so N workers run the GIL-bound stages on N cores.  This
  module is the only place in the repository allowed to construct
  pipe/queue IPC primitives (staticcheck rule ARCH008).
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Protocol, runtime_checkable

from repro.errors import ServingError
from repro.reliability.clock import SYSTEM_CLOCK
from repro.serving.sharding.messages import Shutdown
from repro.serving.sharding.worker import ShardWorker, worker_main


@runtime_checkable
class WorkerHandle(Protocol):
    """What the router needs from a worker, whatever its transport."""

    worker_id: str

    def send(self, command) -> None:  # pragma: no cover - protocol
        ...

    def poll(self) -> list:  # pragma: no cover - protocol
        ...

    def pump(self) -> None:  # pragma: no cover - protocol
        ...

    def alive(self) -> bool:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class InlineWorkerHandle:
    """A shard worker hosted on the router's own thread.

    Deterministic by construction: commands execute synchronously in
    send order, queue draining happens only when the router calls
    :meth:`pump`, and all timing reads whatever clock the underlying
    server was built with.  ``kill`` simulates a crash for supervision
    tests — the handle stops answering and reports not-alive, exactly
    like a dead process, without any real process to kill.
    """

    transport = "inline"

    def __init__(self, worker_id: str, server_factory: Callable[[], object]):
        self.worker_id = worker_id
        self._server_factory = server_factory
        self.worker = ShardWorker(worker_id, server_factory())
        self._events: list = []
        self._dead = False

    def send(self, command) -> None:
        if self._dead:
            return  # a dead worker hears nothing; supervision recovers
        self._events.extend(self.worker.handle(command))

    def poll(self) -> list:
        if self._dead:
            return []
        events = self._events
        self._events = []
        return events

    def pump(self) -> None:
        """Drain the worker's queue to empty, buffering outcome events."""
        if self._dead:
            return
        while self.worker.queue_depth > 0 and not self.worker.stopping:
            self._events.extend(self.worker.step())

    def alive(self) -> bool:
        return not self._dead and not self.worker.stopping

    def kill(self) -> None:
        """Chaos hook: die like a crashed process (events and all)."""
        self._dead = True
        self._events = []

    def restart(self) -> None:
        """Replace the dead worker with a fresh one from the factory."""
        if self.alive():
            raise ServingError(
                f"worker {self.worker_id!r} is alive; refusing to restart"
            )
        self.worker = ShardWorker(self.worker_id, self._server_factory())
        self._events = []
        self._dead = False

    def close(self) -> None:
        if not self._dead:
            self.worker.handle(Shutdown())


class ProcessWorkerHandle:
    """A shard worker in a forked child process, spoken to over a pipe.

    ``fork`` start method: the factory closure travels by memory
    inheritance, not pickling, so benchmarks can capture fitted
    parsers; the factory still *runs* post-fork, giving the child its
    own database connections.  Where ``fork`` is unavailable the
    default context is used and the factory must be picklable.
    """

    transport = "process"

    def __init__(
        self,
        worker_id: str,
        server_factory: Callable[[], object],
        idle_poll_s: float = 0.005,
    ):
        self.worker_id = worker_id
        self._server_factory = server_factory
        self._idle_poll_s = idle_poll_s
        methods = multiprocessing.get_all_start_methods()
        self._ctx = (
            multiprocessing.get_context("fork")
            if "fork" in methods
            else multiprocessing.get_context()
        )
        self._conn = None
        self._process = None
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._server_factory, self.worker_id),
            kwargs={"idle_poll_s": self._idle_poll_s},
            name=f"shard-{self.worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child owns its end now
        self._conn = parent_conn
        self._process = process

    def send(self, command) -> None:
        if not self.alive():
            return  # supervision notices via alive(), not via send errors
        try:
            self._conn.send(command)
        except (BrokenPipeError, OSError):
            pass  # crash detected on the next alive() check

    def poll(self) -> list:
        events: list = []
        try:
            while self._conn is not None and self._conn.poll(0):
                events.append(self._conn.recv())
        except (EOFError, OSError):
            pass  # worker exited; remaining events already collected
        return events

    def pump(self) -> None:
        """No-op: process workers drain their own queues autonomously."""

    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def kill(self) -> None:
        """Chaos hook: hard-kill the child (crash, not clean shutdown)."""
        if self._process is not None:
            self._process.terminate()
            self._process.join(timeout=5.0)

    def restart(self) -> None:
        """Replace a dead child with a fresh one (same factory)."""
        if self.alive():
            raise ServingError(
                f"worker {self.worker_id!r} is alive; refusing to restart"
            )
        if self._conn is not None:
            self._conn.close()
        self._spawn()

    def close(self, timeout_s: float = 10.0) -> None:
        """Clean shutdown: Shutdown command, bounded join, then terminate."""
        if self._process is None:
            return
        if self._process.is_alive():
            self.send(Shutdown())
        deadline = SYSTEM_CLOCK.now() + timeout_s
        self._process.join(timeout=max(0.0, deadline - SYSTEM_CLOCK.now()))
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        if self._conn is not None:
            self._conn.close()
            self._conn = None
