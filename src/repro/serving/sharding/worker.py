"""The shard worker: one Server, one shard set, one message loop.

A :class:`ShardWorker` wraps a :class:`~repro.serving.server.Server`
behind the sharding message protocol: :meth:`handle` processes one
command and returns the reply events, :meth:`step` executes one
micro-batch and returns its outcomes as events.  The class itself is
transport-agnostic — the inline handle calls these methods directly on
the router's thread, and :func:`worker_main` runs the same methods in
a child process, pumping frames over a pipe.

Because each worker owns warm per-shard Engines, StageCaches, provider
routers, and circuit breakers through its private ``Server``, N
workers scale the CPU-heavy stages across N processes with zero shared
mutable state; the only coupling is the message protocol.
"""

from __future__ import annotations

from typing import Callable

from repro.serving.sharding.messages import (
    Drain,
    Drained,
    Heartbeat,
    HeartbeatAck,
    MetricsMsg,
    OutcomeMsg,
    Shutdown,
    SnapshotRequest,
    Submit,
    Warm,
    WorkerFailure,
    picklable_event,
)


class ShardWorker:
    """One shard owner: routes protocol commands onto its Server."""

    def __init__(self, worker_id: str, server):
        self.worker_id = worker_id
        self.server = server
        self.stopping = False

    @property
    def queue_depth(self) -> int:
        return self.server.queue.depth

    def handle(self, command) -> list:
        """Process one command; returns the reply events, in order."""
        if isinstance(command, Submit):
            immediate = self.server.submit(command.request)
            if immediate is not None:
                return [OutcomeMsg(worker_id=self.worker_id, outcome=immediate)]
            return []
        if isinstance(command, Warm):
            for db_id in command.db_ids:
                self.server.warm(db_id)
            return []
        if isinstance(command, Drain):
            events = [
                OutcomeMsg(worker_id=self.worker_id, outcome=outcome)
                for outcome in self.server.drain()
            ]
            events.append(
                Drained(worker_id=self.worker_id, db_ids=command.db_ids)
            )
            return events
        if isinstance(command, Heartbeat):
            return [
                HeartbeatAck(
                    worker_id=self.worker_id,
                    seq=command.seq,
                    queue_depth=self.queue_depth,
                )
            ]
        if isinstance(command, SnapshotRequest):
            return [
                MetricsMsg(
                    worker_id=self.worker_id, snapshot=self.server.metrics()
                )
            ]
        if isinstance(command, Shutdown):
            self.stopping = True
            return []
        raise TypeError(f"unknown shard command {type(command).__name__}")

    def step(self) -> list:
        """Execute one micro-batch; its outcomes become events."""
        return [
            OutcomeMsg(worker_id=self.worker_id, outcome=outcome)
            for outcome in self.server.step()
        ]


def worker_main(
    conn,
    server_factory: Callable[[], object],
    worker_id: str,
    idle_poll_s: float = 0.005,
) -> None:
    """Child-process entry: build the server, pump the pipe until Shutdown.

    The server is constructed *inside* the child (post-fork), so every
    worker owns fresh database connections and engines — nothing
    half-shared with the parent.  Commands take priority over queued
    work; when the pipe is quiet the worker drains its own queue one
    micro-batch at a time, streaming outcome events back.  Unexpected
    errors are classified into :class:`WorkerFailure` events instead of
    killing the loop silently.
    """
    try:
        worker = ShardWorker(worker_id, server_factory())
    except Exception as exc:
        # Classified startup failure: the supervisor sees the event,
        # then the EOF, and applies its restart policy.
        failures = [f"{type(exc).__name__}: {exc}"]
        conn.send(WorkerFailure(worker_id=worker_id, error=failures[0]))
        conn.close()
        return
    try:
        while not worker.stopping:
            busy = worker.queue_depth > 0
            try:
                has_command = conn.poll(0 if busy else idle_poll_s)
            except (EOFError, OSError):
                break  # router went away; nothing left to serve
            try:
                if has_command:
                    events = worker.handle(conn.recv())
                elif busy:
                    events = worker.step()
                else:
                    continue
                for event in events:
                    conn.send(picklable_event(event))
            except (EOFError, OSError):
                break
            except Exception as exc:
                # Classify instead of dying: the router folds these
                # into its failure log, mirroring WorkerPool.failures.
                failures = [f"{type(exc).__name__}: {exc}"]
                conn.send(
                    WorkerFailure(worker_id=worker_id, error=failures[0])
                )
    finally:
        conn.close()
