"""Discrete-event replay of a workload through a :class:`ShardRouter`.

Same open-loop model as :mod:`repro.serving.loadgen`, routed through
the sharded front door.  With inline handles on a FakeClock the loop is
a pure discrete-event simulation: every dispatched request resolves
within the iteration that pumped it, so between arrivals the clock
jumps straight to the next interesting instant — the next arrival or
the router's next supervision deadline (heartbeat timeout, restart
backoff).  Same seed, same outcome sequence, byte for byte, with zero
wall-clock sleeps.

With process handles the same loop runs against the system clock:
in-flight work completes on real worker cores, so the loop polls on a
short real interval instead of jumping.  The branch is keyed off the
handles' ``transport`` tag, not the clock, so a FakeClock is never
busy-waited and a real cluster is never starved.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.eval.reporting import format_serving_report, format_table
from repro.serving.loadgen import Arrival, LoadgenResult
from repro.serving.sharding.router import ShardRouter

#: Real-time poll cadence while process workers hold in-flight work.
PROCESS_POLL_S = 0.002


def _all_inline(router: ShardRouter) -> bool:
    return all(
        getattr(handle, "transport", "") == "inline"
        for handle in router.handles.values()
    )


def replay_sharded(router: ShardRouter, arrivals: Sequence[Arrival]) -> list:
    """Feed ``arrivals`` through ``router``; returns terminal outcomes.

    Every request resolves: completed/failed/shed outcomes stream out
    as workers finish, parked work survives crashes via the router's
    restart redispatch, and the loop only exits when neither arrivals
    nor in-flight work remain.
    """
    pending = deque(sorted(arrivals, key=lambda arrival: arrival.at))
    outcomes: list = []
    inline = _all_inline(router)
    while pending or router.has_work():
        now = router.clock.now()
        while pending and pending[0].at <= now:
            outcome = router.submit(pending.popleft().request)
            if outcome is not None:
                outcomes.append(outcome)
        router.tick()
        router.pump()
        outcomes.extend(router.poll())
        if not pending and not router.has_work():
            break
        now = router.clock.now()
        targets = [pending[0].at] if pending else []
        if router.has_work():
            timer = router.next_timer_due()
            if timer is not None:
                targets.append(timer)
        if inline:
            # Pure discrete-event: dispatched work already resolved in
            # pump(); anything left is waiting on a supervision timer
            # or the next arrival, so jump the clock straight there.
            if targets:
                gap = min(targets) - now
                if gap > 0:
                    router.clock.sleep(gap)
            else:  # pragma: no cover - no workers left at all
                break
        elif router.has_work():
            # Real workers finish on their own cores at their own pace.
            gap = min(targets) - now if targets else PROCESS_POLL_S
            router.clock.sleep(min(max(gap, 0.0), PROCESS_POLL_S))
        elif targets:
            gap = min(targets) - now
            if gap > 0:
                router.clock.sleep(gap)
    return outcomes


def run_loadgen_sharded(
    router: ShardRouter,
    arrivals: Sequence[Arrival],
    title: str = "sharded loadgen",
) -> LoadgenResult:
    """Replay ``arrivals`` through the cluster; byte-stable report.

    The report's metrics section is the *merged* cluster snapshot —
    router-side sheds plus every shard's counters, percentiles
    recomputed from pooled samples.
    """
    started = router.clock.now()
    outcomes = replay_sharded(router, arrivals)
    makespan = router.clock.now() - started
    metrics = router.metrics()
    summary_rows = [
        {
            "requests": len(arrivals),
            "workers": len(router.handles),
            "completed": metrics.completed,
            "shed": metrics.shed_total,
            "failed": metrics.failed,
            "makespan s": round(makespan, 6),
            "throughput rps": round(
                metrics.completed / makespan if makespan > 0 else 0.0, 4
            ),
        }
    ]
    report = "\n".join(
        [
            format_table(summary_rows, title=f"{title} summary"),
            "",
            format_serving_report(metrics, title=f"{title} metrics"),
        ]
    )
    return LoadgenResult(
        report=report, metrics=metrics, outcomes=outcomes, makespan_s=makespan
    )
