"""A small worker pool draining the server from background threads.

Threads live only here (and in ``reliability/``) per ARCH005; the
server itself is synchronous and deterministic, so the pool is a thin
shell: each worker loops ``server.step()``, parking on the admission
queue's condition variable (bounded waits, no raw sleeps) whenever the
queue is empty.  Unexpected exceptions from a step are classified into
the pool's failure log instead of silently killing the thread.
"""

from __future__ import annotations

import threading

from repro.errors import ServingError

#: Default for :class:`WorkerPool`'s ``idle_wait_s``: how long an idle
#: worker parks on the queue's condition variable before re-checking
#: the stop flag (real seconds; bounds shutdown latency, not
#: throughput — arrivals notify the condition).
IDLE_WAIT_S = 0.05


class WorkerPool:
    """Threads repeatedly calling ``server.step()`` until stopped.

    ``idle_wait_s`` is per-pool: tests shrink it so shutdown and
    ``wait_for`` polling resolve in milliseconds, while long-running
    deployments can stretch it to cut idle wakeups.
    """

    def __init__(self, server, workers: int = 2, idle_wait_s: float = IDLE_WAIT_S):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if idle_wait_s <= 0:
            raise ValueError(f"idle_wait_s must be positive, got {idle_wait_s}")
        self.server = server
        self.workers = workers
        self.idle_wait_s = idle_wait_s
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._outcomes: list = []
        #: classified unexpected errors, one dict per incident
        self.failures: list[dict[str, str]] = []

    def start(self) -> None:
        if self._threads:
            raise ServingError("worker pool already started")
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._run, name=f"serving-worker-{index}", daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                outcomes = self.server.step()
            except Exception as exc:
                # Classify instead of letting the thread die silently;
                # the server already converts expected errors into
                # typed outcomes, so anything here is a genuine bug.
                self.failures.append(
                    {"error": f"{type(exc).__name__}: {exc}"}
                )
                continue
            if outcomes:
                with self._lock:
                    self._outcomes.extend(outcomes)
            else:
                self.server.queue.wait_nonempty(self.idle_wait_s)

    def stop(self) -> None:
        """Signal workers to exit and join them."""
        self._stop.set()
        for thread in self._threads:
            thread.join()
        self._threads.clear()

    def wait_for(self, count: int, timeout_s: float = 30.0) -> bool:
        """Block until ``count`` outcomes are collected (bounded waits).

        Returns whether the count was reached before roughly
        ``timeout_s`` of idle parking elapsed.
        """
        waited = 0.0
        while True:
            with self._lock:
                if len(self._outcomes) >= count:
                    return True
            if waited >= timeout_s or self._stop.is_set():
                return False
            self._stop.wait(self.idle_wait_s)
            waited += self.idle_wait_s

    def results(self) -> list:
        """Outcomes collected so far (snapshot copy)."""
        with self._lock:
            return list(self._outcomes)
