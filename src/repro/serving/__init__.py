"""Concurrent serving layer over the staged inference engine (PR 5).

Admission control (bounded queue, per-tenant token buckets), a
per-database micro-batching scheduler with a watermark degradation
ladder, typed shed/completion outcomes, deterministic load generation,
and a thread worker pool.  Everything timing-related reads an
injectable Clock, so the whole layer runs — and is tested — on a
FakeClock with zero wall-clock sleeps.
"""

from repro.serving.loadgen import (
    Arrival,
    LoadgenResult,
    ServiceModel,
    poisson_workload,
    replay,
    run_loadgen,
)
from repro.serving.metrics import (
    SAMPLE_CAPACITY,
    MetricsAggregator,
    ServerMetrics,
    nearest_rank,
)
from repro.serving.outcomes import (
    BreakerShed,
    Completed,
    DeadlineShed,
    Failed,
    Overloaded,
    ProviderShed,
    RateLimited,
    ServeRequest,
    Shed,
)
from repro.serving.queue import AdmissionQueue
from repro.serving.ratelimit import TokenBucket
from repro.serving.scheduler import (
    TIERS,
    Batch,
    DegradationLadder,
    MicroBatchScheduler,
    QueuedRequest,
)
from repro.serving.server import Server, ServerConfig
from repro.serving.sharding import (
    InlineWorkerHandle,
    ProcessWorkerHandle,
    ShardingConfig,
    ShardMap,
    ShardMove,
    ShardRouter,
    ShardWorker,
    default_worker_ids,
    replay_sharded,
    run_loadgen_sharded,
)
from repro.serving.worker import WorkerPool

__all__ = [
    "AdmissionQueue",
    "Arrival",
    "Batch",
    "BreakerShed",
    "Completed",
    "DeadlineShed",
    "DegradationLadder",
    "Failed",
    "InlineWorkerHandle",
    "LoadgenResult",
    "MetricsAggregator",
    "SAMPLE_CAPACITY",
    "MicroBatchScheduler",
    "Overloaded",
    "ProcessWorkerHandle",
    "ProviderShed",
    "QueuedRequest",
    "RateLimited",
    "ServeRequest",
    "Server",
    "ServerConfig",
    "ServerMetrics",
    "ServiceModel",
    "ShardMap",
    "ShardMove",
    "ShardRouter",
    "ShardWorker",
    "ShardingConfig",
    "Shed",
    "TIERS",
    "TokenBucket",
    "WorkerPool",
    "default_worker_ids",
    "nearest_rank",
    "poisson_workload",
    "replay",
    "replay_sharded",
    "run_loadgen",
    "run_loadgen_sharded",
]
