"""Per-tenant token-bucket rate limiting.

A classic token bucket on the injectable Clock: tokens refill
continuously at ``rate`` per second up to ``burst``, and each admitted
request takes one.  Refill is computed lazily from elapsed clock time
at each ``try_take``, so the bucket needs no timer thread and is exact
under a :class:`~repro.reliability.clock.FakeClock`.
"""

from __future__ import annotations

import threading

from repro.reliability.clock import Clock, SYSTEM_CLOCK


class TokenBucket:
    """Thread-safe token bucket over an injectable clock."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Clock | None = None,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else SYSTEM_CLOCK
        self._tokens = self.burst
        self._refilled_at = self._clock.now()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    def try_take(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; False means rate-limited."""
        with self._lock:
            self._refill(self._clock.now())
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False

    @property
    def available(self) -> float:
        """Current token count (after lazy refill)."""
        with self._lock:
            self._refill(self._clock.now())
            return self._tokens
