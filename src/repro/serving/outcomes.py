"""Typed request and outcome records for the serving layer.

Every request submitted to the :class:`~repro.serving.server.Server`
resolves to exactly one outcome object.  Outcomes are frozen
dataclasses with a class-level ``status`` tag, so callers can switch on
``outcome.status`` (stable strings, what ``repro serve`` prints) or on
the type itself.  Shed outcomes subclass :class:`Shed`, which makes
"was this request shed?" a single ``isinstance`` check while the
concrete subclass — :class:`Overloaded`, :class:`RateLimited`,
:class:`DeadlineShed`, :class:`BreakerShed` — says *why*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.trace import InferenceTrace


@dataclass(frozen=True)
class ServeRequest:
    """One question bound for one database, as submitted by a tenant.

    ``deadline_s`` is a *relative* budget: the server converts it into
    an absolute :class:`~repro.reliability.deadline.Deadline` on its
    clock at admission time, so the time spent queued counts against
    it.
    """

    request_id: str
    question: str
    db_id: str
    tenant: str = "default"
    deadline_s: float | None = None


@dataclass(frozen=True)
class Completed:
    """The request was served; ``tier`` reports which ladder rung answered."""

    status: ClassVar[str] = "completed"

    request: ServeRequest
    sql: str
    tier: str
    latency_s: float
    queue_s: float
    trace: "InferenceTrace | None" = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class Shed:
    """Base for every load-shedding outcome: the request was NOT executed."""

    status: ClassVar[str] = "shed"

    request: ServeRequest
    reason: str


@dataclass(frozen=True)
class Overloaded(Shed):
    """Rejected at admission: the bounded queue was full."""

    status: ClassVar[str] = "overloaded"


@dataclass(frozen=True)
class RateLimited(Shed):
    """Rejected at admission: the tenant's token bucket was empty."""

    status: ClassVar[str] = "rate_limited"


@dataclass(frozen=True)
class DeadlineShed(Shed):
    """Dropped at batch formation: the deadline expired while queued."""

    status: ClassVar[str] = "deadline_shed"


@dataclass(frozen=True)
class BreakerShed(Shed):
    """Short-circuited: the database's circuit breaker is open."""

    status: ClassVar[str] = "breaker_shed"


@dataclass(frozen=True)
class ProviderShed(Shed):
    """Short-circuited: every LM provider's circuit breaker is open.

    Distinct from :class:`BreakerShed` (the *database* breaker): here
    the request reached the engine but no provider could take the LM
    call, so the database breaker is not charged — the database did
    nothing wrong.
    """

    status: ClassVar[str] = "provider_shed"


@dataclass(frozen=True)
class Failed:
    """The request executed but generation raised a classified error."""

    status: ClassVar[str] = "failed"

    request: ServeRequest
    error: str
    latency_s: float
