"""The bounded admission queue feeding the micro-batch scheduler.

Admission control starts here: :meth:`AdmissionQueue.offer` never
blocks and returns ``False`` when the queue is at capacity, which the
server converts into a typed ``Overloaded`` outcome.  The scheduler
consumes through :meth:`pop_group`, which atomically pops the oldest
item plus up to ``max_size - 1`` younger items sharing its key — the
per-database micro-batch.  Popping the oldest first guarantees
progress (no key can starve) and keeps arrival order within a batch.

All waiting uses ``Condition.wait`` with a timeout; there are no raw
sleeps, so worker threads shut down promptly and FakeClock tests never
block on wall time.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable


class AdmissionQueue:
    """Bounded FIFO with keyed group pops, safe for concurrent use."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def offer(self, item: Any) -> bool:
        """Enqueue without blocking; ``False`` means the queue is full."""
        with self._lock:
            if len(self._items) >= self.capacity:
                return False
            self._items.append(item)
            self._not_empty.notify()
            return True

    def pop_group(
        self, max_size: int, key_fn: Callable[[Any], Any]
    ) -> list[Any]:
        """Pop the oldest item plus younger items sharing its key.

        Returns at most ``max_size`` items in arrival order, or ``[]``
        when the queue is empty.  Atomicity matters: two workers
        popping concurrently must not split one database's batch.
        """
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        with self._lock:
            if not self._items:
                return []
            head = self._items.popleft()
            group = [head]
            key = key_fn(head)
            kept: deque = deque()
            while self._items and len(group) < max_size:
                item = self._items.popleft()
                if key_fn(item) == key:
                    group.append(item)
                else:
                    kept.append(item)
            kept.extend(self._items)
            self._items = kept
            return group

    def wait_nonempty(self, timeout: float) -> bool:
        """Block up to ``timeout`` (real) seconds for an item to arrive.

        Returns whether the queue is non-empty.  Used only by worker
        threads idling between batches; deterministic tests drive the
        server synchronously and never call this.
        """
        with self._lock:
            if self._items:
                return True
            self._not_empty.wait(timeout)
            return bool(self._items)
