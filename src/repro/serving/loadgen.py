"""Seeded open-loop load generation and deterministic replay.

The workload model is open-loop Poisson: inter-arrival gaps drawn from
``random.Random(seed).expovariate(rate)``, requests cycling through a
dataset's dev examples.  :func:`replay` is a discrete-event loop over
the server's (Fake)Clock — admit every arrival that is due, execute a
batch if anything is queued, otherwise advance the clock to the next
arrival.  Service time comes from the :class:`ServiceModel` (flat,
per-tier simulated costs charged via ``clock.sleep``), so queue
buildup — and therefore watermark crossings, deadline expiry, and
shedding — is a pure function of ``(workload, config, model)``.  Same
seed, same report, byte for byte.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.eval.reporting import format_serving_report, format_table
from repro.serving.outcomes import ServeRequest
from repro.serving.server import Server

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datasets.base import Text2SQLExample
    from repro.serving.metrics import ServerMetrics


@dataclass(frozen=True)
class Arrival:
    """One request and its scheduled arrival time (seconds from start)."""

    at: float
    request: ServeRequest


@dataclass(frozen=True)
class ServiceModel:
    """Flat per-tier simulated service costs, charged on the clock.

    The full tier is the paper's expensive path (beam of 4 with
    execution-guided selection); skeleton skips the beam; sentinel is a
    constant-time answer.  The defaults keep full-tier service slower
    than a 20 req/s arrival rate can drain, so overload scenarios are
    easy to provoke in tests.
    """

    full_s: float = 0.08
    skeleton_s: float = 0.02
    sentinel_s: float = 0.002

    def cost(self, tier: str) -> float:
        if tier == "full":
            return self.full_s
        if tier == "skeleton":
            return self.skeleton_s
        if tier == "sentinel":
            return self.sentinel_s
        raise ValueError(f"unknown effort tier {tier!r}")


def poisson_workload(
    examples: "Sequence[Text2SQLExample]",
    n: int,
    rate: float,
    seed: int = 0,
    tenants: tuple[str, ...] = ("default",),
    deadline_s: float | None = None,
) -> list[Arrival]:
    """``n`` arrivals at Poisson rate ``rate``/s cycling through ``examples``."""
    if not examples:
        raise ValueError("cannot build a workload from zero examples")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = random.Random(seed)
    arrivals: list[Arrival] = []
    at = 0.0
    for index in range(n):
        at += rng.expovariate(rate)
        example = examples[index % len(examples)]
        arrivals.append(
            Arrival(
                at=at,
                request=ServeRequest(
                    request_id=f"r{index:05d}",
                    question=example.question,
                    db_id=example.db_id,
                    tenant=tenants[index % len(tenants)],
                    deadline_s=deadline_s,
                ),
            )
        )
    return arrivals


def replay(server: Server, arrivals: Sequence[Arrival]) -> list:
    """Feed ``arrivals`` through ``server`` as a discrete-event loop.

    Advances the server's clock between arrivals (``clock.sleep``, so a
    FakeClock replay runs instantly) and drains the queue to empty.
    Returns every terminal outcome in resolution order: immediate sheds
    interleaved with batch results.
    """
    pending = deque(sorted(arrivals, key=lambda arrival: arrival.at))
    outcomes: list = []
    while pending or server.queue.depth > 0:
        now = server.clock.now()
        while pending and pending[0].at <= now:
            outcome = server.submit(pending.popleft().request)
            if outcome is not None:
                outcomes.append(outcome)
        if server.queue.depth > 0:
            outcomes.extend(server.step())
        elif pending:
            gap = pending[0].at - server.clock.now()
            if gap > 0:
                server.clock.sleep(gap)
    return outcomes


@dataclass(frozen=True)
class LoadgenResult:
    """Everything one loadgen run produced."""

    report: str
    metrics: "ServerMetrics"
    outcomes: list
    makespan_s: float

    @property
    def throughput_rps(self) -> float:
        return (
            self.metrics.completed / self.makespan_s if self.makespan_s > 0 else 0.0
        )


def run_loadgen(
    server: Server,
    arrivals: Sequence[Arrival],
    title: str = "loadgen",
) -> LoadgenResult:
    """Replay ``arrivals`` and package the byte-stable report."""
    started = server.clock.now()
    outcomes = replay(server, arrivals)
    makespan = server.clock.now() - started
    metrics = server.metrics()
    summary_rows = [
        {
            "requests": len(arrivals),
            "completed": metrics.completed,
            "shed": metrics.shed_total,
            "failed": metrics.failed,
            "makespan s": round(makespan, 6),
            "throughput rps": round(
                metrics.completed / makespan if makespan > 0 else 0.0, 4
            ),
        }
    ]
    report = "\n".join(
        [
            format_table(summary_rows, title=f"{title} summary"),
            "",
            format_serving_report(metrics, title=f"{title} metrics"),
        ]
    )
    return LoadgenResult(
        report=report, metrics=metrics, outcomes=outcomes, makespan_s=makespan
    )
