"""Micro-batch formation and the watermark degradation ladder.

The scheduler turns the admission queue into per-database batches:
each batch holds requests for one database so the executor can route
them all through one warm ``Engine`` + ``StageCache`` (the whole point
of micro-batching here — per-database resources and memos are the
dominant reusable state).

The :class:`DegradationLadder` converts queue depth into an effort
tier at batch-formation time: below ``skeleton_watermark`` requests
run the full beam pipeline, between the watermarks they skip the beam
and answer from the skeleton bank, and past ``sentinel_watermark``
they are answered with the safe sentinel without touching the engine
at all.  Depth is sampled once per batch so every request in a batch
shares one tier — the deterministic property the FakeClock tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.serving.queue import AdmissionQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.reliability.deadline import Deadline
    from repro.serving.outcomes import ServeRequest

#: Effort tiers in decreasing cost; mirrors the engine's degradation
#: ladder (beam → skeleton → sentinel).
TIERS = ("full", "skeleton", "sentinel")


@dataclass(frozen=True)
class QueuedRequest:
    """A request plus its admission-time bookkeeping."""

    request: "ServeRequest"
    enqueued_at: float
    deadline: "Deadline | None" = None


@dataclass(frozen=True)
class DegradationLadder:
    """Maps queue depth to the effort tier new batches run at."""

    skeleton_watermark: int
    sentinel_watermark: int

    def __post_init__(self) -> None:
        if self.skeleton_watermark < 1:
            raise ValueError(
                f"skeleton_watermark must be >= 1, got {self.skeleton_watermark}"
            )
        if self.sentinel_watermark < self.skeleton_watermark:
            raise ValueError(
                "sentinel_watermark must be >= skeleton_watermark, got "
                f"{self.sentinel_watermark} < {self.skeleton_watermark}"
            )

    def tier_for(self, depth: int) -> str:
        """The effort tier for a batch formed at queue depth ``depth``."""
        if depth >= self.sentinel_watermark:
            return "sentinel"
        if depth >= self.skeleton_watermark:
            return "skeleton"
        return "full"


@dataclass(frozen=True)
class Batch:
    """One per-database unit of work, tagged with its formation state."""

    db_id: str
    items: tuple[QueuedRequest, ...]
    depth_at_formation: int
    tier: str

    def __len__(self) -> int:
        return len(self.items)


class MicroBatchScheduler:
    """Forms per-database batches from the admission queue."""

    def __init__(
        self,
        queue: AdmissionQueue,
        ladder: DegradationLadder,
        batch_size: int,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.queue = queue
        self.ladder = ladder
        self.batch_size = batch_size

    def next_batch(self) -> Batch | None:
        """The next per-database batch, or ``None`` when the queue is empty.

        Queue depth is sampled *before* the pop: the ladder should see
        the pressure that existed when these requests were selected,
        not the relief caused by selecting them.
        """
        depth = self.queue.depth
        items = self.queue.pop_group(
            self.batch_size, key_fn=lambda item: item.request.db_id
        )
        if not items:
            return None
        return Batch(
            db_id=items[0].request.db_id,
            items=tuple(items),
            depth_at_formation=depth,
            tier=self.ladder.tier_for(depth),
        )
