"""Server metrics: lock-protected counters, immutable snapshots.

The aggregator ingests typed outcomes as workers produce them; a
:class:`ServerMetrics` snapshot is a frozen copy a reader can hold
while the server keeps running.  Latency percentiles use the
nearest-rank method over completed requests' end-to-end latencies
(queue wait + service, as measured on the server's clock), and the
per-stage wall-time breakdown aggregates each request's
``TraceRecorder`` output — the same numbers ``repro trace`` prints for
a single request, summed across the fleet.

Snapshots are *mergeable*: :meth:`ServerMetrics.merge` folds per-shard
snapshots into one cluster view.  Counters add exactly; percentiles
are recomputed from the pooled latency samples each snapshot carries
(sample-merge), never by averaging the per-shard percentiles — the
p95 of a hot shard and a cold shard tells you nothing about the p95 of
their union, but the pooled samples do, exactly.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.serving.outcomes import Completed, Failed, Shed

#: Default bound on the raw samples an aggregator retains and a
#: snapshot carries.  Without a bound, per-request history grows (and
#: is pickled across the sharding layer's process pipe) linearly with
#: total completed requests — a long-running server would degrade
#: unboundedly.  Below the cap everything is exact; past it the
#: percentiles become a deterministic approximation (see
#: :meth:`ServerMetrics.merge`) while every counter and mean stays
#: exact.
SAMPLE_CAPACITY = 4096


def nearest_rank(values: "Iterable[float]", percentile: float) -> float:
    """Nearest-rank percentile of ``values``; 0.0 for an empty list."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    rank = max(1, math.ceil(percentile / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _downsample(values: list[float], capacity: int | None) -> tuple[float, ...]:
    """Deterministically thin ``values`` to at most ``capacity`` samples.

    Sorted-stride selection: the kept samples are evenly spaced ranks
    of the sorted pool, so downstream nearest-rank percentiles stay
    close to the full-pool values without carrying the full history.
    """
    if capacity is None or len(values) <= capacity:
        return tuple(values)
    ordered = sorted(values)
    step = len(ordered) / capacity
    last = len(ordered) - 1
    return tuple(ordered[min(last, int(i * step))] for i in range(capacity))


@dataclass(frozen=True)
class ServerMetrics:
    """One immutable snapshot of the server's counters and gauges."""

    queue_depth: int
    admitted: int
    completed: int
    failed: int
    shed: dict[str, int]
    tiers: dict[str, int]
    p50_latency_s: float
    p95_latency_s: float
    mean_queue_s: float
    batches: int
    mean_batch_occupancy: float
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    stage_wall_s: dict[str, float] = field(default_factory=dict)
    # -- provider-router observability (empty when the parser has no
    # router, e.g. test stubs) ----------------------------------------
    #: Per-provider outcome counters plus breaker snapshots, as plain
    #: dicts (serving never imports repro.lm.providers — ARCH006).
    providers: tuple[dict, ...] = ()
    provider_requests: int = 0
    provider_failovers: int = 0
    provider_retries: int = 0
    hedges_fired: int = 0
    hedge_wins: int = 0
    hedge_discarded: int = 0
    provider_sheds: int = 0
    #: Per-database breaker snapshots (``BreakerStats.as_dict`` form).
    database_breakers: tuple[dict, ...] = ()
    #: Raw end-to-end latency samples and queue-wait samples.  These
    #: make snapshots mergeable: the pooled samples are the ground
    #: truth the merged percentiles are recomputed from.  Plain
    #: floats, so snapshots stay picklable across the sharding layer's
    #: process boundary — and bounded (``SAMPLE_CAPACITY``), so the
    #: pipe payload does not grow with total requests served.  Below
    #: the cap these are the complete history (one latency per
    #: completed request); past it they are a deterministic subsample
    #: and percentiles become approximate, while counters and means
    #: stay exact.
    latency_samples: tuple[float, ...] = ()
    queue_wait_samples: tuple[float, ...] = ()

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @staticmethod
    def merge(
        *snapshots: "ServerMetrics",
        sample_capacity: int | None = SAMPLE_CAPACITY,
    ) -> "ServerMetrics":
        """Fold per-shard snapshots into one cluster snapshot.

        Exact for every counter (sums, dict-sums) and for the queue
        mean (weighted by each shard's completed count).  p50/p95 are
        recomputed with nearest-rank over the union of every
        snapshot's ``latency_samples`` — byte-identical to what a
        single aggregator observing all the outcomes would have
        reported, as long as every input carries its full history
        (i.e. stayed under ``SAMPLE_CAPACITY``).  Past the cap the
        inputs are already subsampled, so merged percentiles become a
        deterministic approximation; averaging per-shard percentiles
        would be *wrong*, pooling samples is not.  The merged snapshot
        carries at most ``sample_capacity`` pooled samples itself, so
        repeated folds stay bounded.  Provider and breaker rows are
        concatenated (each shard owns disjoint routers and breakers),
        with gauge-like provider counters summed.
        """
        if not snapshots:
            return MetricsAggregator().snapshot()
        latencies: list[float] = []
        queue_waits: list[float] = []
        shed: dict[str, int] = {}
        tiers: dict[str, int] = {}
        stage_wall_s: dict[str, float] = {}
        providers: list[dict] = []
        database_breakers: list[dict] = []
        batches = 0
        batched_items = 0.0
        for snapshot in snapshots:
            latencies.extend(snapshot.latency_samples)
            queue_waits.extend(snapshot.queue_wait_samples)
            for reason, count in sorted(snapshot.shed.items()):
                shed[reason] = shed.get(reason, 0) + count
            for tier, count in sorted(snapshot.tiers.items()):
                tiers[tier] = tiers.get(tier, 0) + count
            for stage, wall in sorted(snapshot.stage_wall_s.items()):
                stage_wall_s[stage] = stage_wall_s.get(stage, 0.0) + wall
            providers.extend(snapshot.providers)
            database_breakers.extend(snapshot.database_breakers)
            batches += snapshot.batches
            batched_items += snapshot.mean_batch_occupancy * snapshot.batches
        completed = sum(s.completed for s in snapshots)
        # Weighted by completed counts this is exact even when the
        # carried queue_wait_samples are a capped subsample: each
        # shard's mean was computed from running totals over *all* its
        # completions.
        queued_total = sum(s.mean_queue_s * s.completed for s in snapshots)
        return ServerMetrics(
            queue_depth=sum(s.queue_depth for s in snapshots),
            admitted=sum(s.admitted for s in snapshots),
            completed=completed,
            failed=sum(s.failed for s in snapshots),
            shed=shed,
            tiers=tiers,
            p50_latency_s=nearest_rank(latencies, 50),
            p95_latency_s=nearest_rank(latencies, 95),
            mean_queue_s=(queued_total / completed if completed else 0.0),
            batches=batches,
            mean_batch_occupancy=(batched_items / batches if batches else 0.0),
            cache_hits=sum(s.cache_hits for s in snapshots),
            cache_misses=sum(s.cache_misses for s in snapshots),
            cache_evictions=sum(s.cache_evictions for s in snapshots),
            stage_wall_s=stage_wall_s,
            providers=tuple(providers),
            provider_requests=sum(s.provider_requests for s in snapshots),
            provider_failovers=sum(s.provider_failovers for s in snapshots),
            provider_retries=sum(s.provider_retries for s in snapshots),
            hedges_fired=sum(s.hedges_fired for s in snapshots),
            hedge_wins=sum(s.hedge_wins for s in snapshots),
            hedge_discarded=sum(s.hedge_discarded for s in snapshots),
            provider_sheds=shed.get("provider_shed", 0),
            database_breakers=tuple(database_breakers),
            latency_samples=_downsample(latencies, sample_capacity),
            queue_wait_samples=_downsample(queue_waits, sample_capacity),
        )

    def as_rows(self) -> list[dict[str, object]]:
        """Key/value rows for :func:`repro.eval.reporting.format_table`."""
        rows: list[dict[str, object]] = [
            {"metric": "queue depth", "value": self.queue_depth},
            {"metric": "admitted", "value": self.admitted},
            {"metric": "completed", "value": self.completed},
            {"metric": "failed", "value": self.failed},
            {"metric": "shed total", "value": self.shed_total},
        ]
        for reason in sorted(self.shed):
            rows.append({"metric": f"shed {reason}", "value": self.shed[reason]})
        for tier in sorted(self.tiers):
            rows.append({"metric": f"tier {tier}", "value": self.tiers[tier]})
        rows.extend(
            [
                {"metric": "p50 latency s", "value": round(self.p50_latency_s, 6)},
                {"metric": "p95 latency s", "value": round(self.p95_latency_s, 6)},
                {"metric": "mean queue s", "value": round(self.mean_queue_s, 6)},
                {"metric": "batches", "value": self.batches},
                {
                    "metric": "mean batch occupancy",
                    "value": round(self.mean_batch_occupancy, 4),
                },
                {"metric": "cache hits", "value": self.cache_hits},
                {"metric": "cache misses", "value": self.cache_misses},
                {"metric": "cache evictions", "value": self.cache_evictions},
            ]
        )
        if self.provider_requests:
            rows.extend(
                [
                    {"metric": "provider requests", "value": self.provider_requests},
                    {"metric": "provider failovers", "value": self.provider_failovers},
                    {"metric": "provider retries", "value": self.provider_retries},
                    {"metric": "hedges fired", "value": self.hedges_fired},
                    {"metric": "hedge wins", "value": self.hedge_wins},
                    {"metric": "hedge discarded", "value": self.hedge_discarded},
                    {"metric": "provider sheds", "value": self.provider_sheds},
                ]
            )
            for provider in self.providers:
                breaker = provider.get("breaker", {})
                rows.append(
                    {
                        "metric": f"provider {provider['name']}",
                        "value": (
                            f"ok={provider['successes']} "
                            f"fail={provider['failures']} "
                            f"breaker={breaker.get('state', '?')}"
                        ),
                    }
                )
        for breaker in self.database_breakers:
            rows.append(
                {
                    "metric": f"db breaker {breaker['name']}",
                    "value": (
                        f"state={breaker['state']} opens={breaker['open_count']}"
                    ),
                }
            )
        return rows


class MetricsAggregator:
    """Thread-safe accumulator the server and its workers write into.

    Counters and running totals are exact forever; the raw samples
    backing the percentiles live in fixed-size rings
    (``sample_capacity``, default :data:`SAMPLE_CAPACITY`), so memory
    and snapshot size stay bounded however long the server runs.
    Under the cap the rings hold the complete history and every
    reported number is exact; past it the percentiles reflect the most
    recent ``sample_capacity`` completions.
    """

    def __init__(self, sample_capacity: int | None = SAMPLE_CAPACITY) -> None:
        if sample_capacity is not None and sample_capacity < 1:
            raise ValueError(
                f"sample_capacity must be >= 1, got {sample_capacity}"
            )
        self._lock = threading.Lock()
        self._admitted = 0
        self._completed = 0
        self._failed = 0
        self._shed: dict[str, int] = {}
        self._tiers: dict[str, int] = {}
        self._latencies: "deque[float]" = deque(maxlen=sample_capacity)
        self._queue_waits: "deque[float]" = deque(maxlen=sample_capacity)
        self._queue_wait_total = 0.0
        self._batches = 0
        self._batched_items = 0
        self._stage_wall_s: dict[str, float] = {}

    def record_admitted(self) -> None:
        with self._lock:
            self._admitted += 1

    def record(self, outcome) -> None:
        """Ingest one terminal outcome."""
        with self._lock:
            if isinstance(outcome, Completed):
                self._tiers[outcome.tier] = self._tiers.get(outcome.tier, 0) + 1
                self._completed += 1
                self._latencies.append(outcome.latency_s)
                self._queue_waits.append(outcome.queue_s)
                self._queue_wait_total += outcome.queue_s
                if outcome.trace is not None:
                    for stage in outcome.trace.stages:
                        self._stage_wall_s[stage.stage] = (
                            self._stage_wall_s.get(stage.stage, 0.0)
                            + stage.wall_s
                        )
            elif isinstance(outcome, Shed):
                self._shed[outcome.status] = self._shed.get(outcome.status, 0) + 1
            elif isinstance(outcome, Failed):
                self._failed += 1
            else:
                raise TypeError(f"unknown outcome type {type(outcome).__name__}")

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batched_items += size

    def snapshot(
        self,
        queue_depth: int = 0,
        cache_stats: "list[dict] | None" = None,
        router_stats: "dict | None" = None,
        breaker_stats: "list[dict] | None" = None,
    ) -> ServerMetrics:
        """A frozen snapshot.

        ``cache_stats`` are per-engine ``StageCache.stats``;
        ``router_stats`` is the provider router's ``stats_dict()``
        (plain data — serving never imports the providers package);
        ``breaker_stats`` are per-database ``BreakerStats.as_dict()``
        snapshots.
        """
        caches = cache_stats or []
        router = router_stats or {}
        with self._lock:
            return ServerMetrics(
                queue_depth=queue_depth,
                admitted=self._admitted,
                completed=self._completed,
                failed=self._failed,
                shed=dict(self._shed),
                tiers=dict(self._tiers),
                p50_latency_s=nearest_rank(self._latencies, 50),
                p95_latency_s=nearest_rank(self._latencies, 95),
                mean_queue_s=(
                    self._queue_wait_total / self._completed
                    if self._completed
                    else 0.0
                ),
                batches=self._batches,
                mean_batch_occupancy=(
                    self._batched_items / self._batches if self._batches else 0.0
                ),
                cache_hits=sum(int(stats["hits"]) for stats in caches),
                cache_misses=sum(int(stats["misses"]) for stats in caches),
                cache_evictions=sum(
                    int(stats.get("evictions", 0)) for stats in caches
                ),
                stage_wall_s=dict(self._stage_wall_s),
                providers=tuple(router.get("providers", ())),
                provider_requests=int(router.get("requests", 0)),
                provider_failovers=int(router.get("failovers", 0)),
                provider_retries=int(router.get("retries", 0)),
                hedges_fired=int(router.get("hedges_fired", 0)),
                hedge_wins=int(router.get("hedge_wins", 0)),
                hedge_discarded=int(router.get("hedge_discarded", 0)),
                provider_sheds=self._shed.get("provider_shed", 0),
                database_breakers=tuple(breaker_stats or ()),
                latency_samples=tuple(self._latencies),
                queue_wait_samples=tuple(self._queue_waits),
            )
