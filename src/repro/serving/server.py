"""The serving front-end over the staged inference engine.

One :class:`Server` owns the admission path (per-tenant token buckets,
the bounded queue), the micro-batch scheduler with its watermark
degradation ladder, per-database execution state (one warm ``Engine``
+ bounded ``StageCache`` and one ``CircuitBreaker`` per database), and
the metrics aggregator.  It is deliberately synchronous at its core:
:meth:`submit` admits or sheds, :meth:`step` executes one batch, and
:meth:`drain` loops ``step`` until empty — the worker pool
(:mod:`repro.serving.worker`) merely calls ``step`` from threads.
Every timing decision reads the injectable Clock, so the whole server
runs deterministically on a FakeClock.

Overload behaviour, composed from the reliability layer:

- queue full → typed ``Overloaded`` outcome at submit;
- token bucket empty → ``RateLimited`` at submit;
- deadline expired while queued → ``DeadlineShed`` at batch formation,
  without executing;
- breaker open for the database → ``BreakerShed`` without executing;
- queue depth past the watermarks → batches run at ``skeleton`` or
  ``sentinel`` effort (the PR-1 degradation tiers) instead of the full
  beam pipeline.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.core.ranking import SENTINEL_SQL
from repro.db.backends import create_backend
from repro.engine import StageCache
from repro.errors import (
    AllProvidersOpenError,
    DeadlineExceededError,
    ReproError,
    ServingError,
)
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.clock import Clock, SYSTEM_CLOCK
from repro.reliability.deadline import Deadline, ExecutionGuard
from repro.serving.metrics import MetricsAggregator, ServerMetrics
from repro.serving.outcomes import (
    BreakerShed,
    Completed,
    DeadlineShed,
    Failed,
    Overloaded,
    ProviderShed,
    RateLimited,
    ServeRequest,
)
from repro.serving.queue import AdmissionQueue
from repro.serving.ratelimit import TokenBucket
from repro.serving.scheduler import (
    Batch,
    DegradationLadder,
    MicroBatchScheduler,
    QueuedRequest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Database


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs for one server instance."""

    queue_capacity: int = 64
    batch_size: int = 4
    skeleton_watermark: int = 8
    sentinel_watermark: int = 24
    #: Tokens per second per tenant; ``None`` disables rate limiting.
    rate_per_tenant: float | None = None
    burst_per_tenant: float = 16.0
    #: Applied when a request carries no deadline; ``None`` = unbounded.
    default_deadline_s: float | None = None
    breaker_failure_threshold: int = 3
    breaker_recovery_s: float = 5.0
    #: LRU bound for each per-database engine's StageCache.
    cache_capacity: int | None = 256
    #: Execution backend every request's database is adapted into
    #: (:func:`repro.db.backends.create_backend`); ``"sqlite"`` is the
    #: identity and serves the reference databases untouched.
    backend: str = "sqlite"

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")


class Server:
    """Admission control + micro-batched execution over one parser.

    ``databases`` maps ``db_id`` to the Database each request names.
    ``service_model`` (optional, duck-typed ``cost(tier) -> float``)
    charges simulated service time on the clock before each execution —
    the loadgen uses it to make queueing dynamics reproducible on a
    FakeClock without real inference cost.
    """

    def __init__(
        self,
        parser,
        databases: "Mapping[str, Database]",
        config: ServerConfig | None = None,
        clock: Clock | None = None,
        service_model=None,
    ):
        self.parser = parser
        self.config = config or ServerConfig()
        # Adapt every database into the configured execution backend at
        # construction time (an unknown backend fails fast here); the
        # default "sqlite" factory is the identity.
        self.databases = {
            db_id: create_backend(self.config.backend, database)
            for db_id, database in databases.items()
        }
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.service_model = service_model
        self.queue = AdmissionQueue(self.config.queue_capacity)
        self.scheduler = MicroBatchScheduler(
            self.queue,
            DegradationLadder(
                skeleton_watermark=self.config.skeleton_watermark,
                sentinel_watermark=self.config.sentinel_watermark,
            ),
            batch_size=self.config.batch_size,
        )
        self.metrics_aggregator = MetricsAggregator()
        self._engines: dict[str, object] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._db_locks: dict[str, threading.Lock] = {}
        #: guards the resource dicts above (creation races between workers)
        self._resources_lock = threading.Lock()

    # -- admission -----------------------------------------------------------

    def submit(self, request: ServeRequest):
        """Admit ``request`` or shed it immediately.

        Returns ``None`` when the request was enqueued (its outcome
        arrives from a later :meth:`step`), or the typed shed/failure
        outcome when it never entered the queue.
        """
        if request.db_id not in self.databases:
            outcome = Failed(
                request=request,
                error=f"unknown database {request.db_id!r}",
                latency_s=0.0,
            )
            self.metrics_aggregator.record(outcome)
            return outcome
        if self.config.rate_per_tenant is not None:
            bucket = self._bucket_for(request.tenant)
            if not bucket.try_take():
                outcome = RateLimited(
                    request=request,
                    reason=f"tenant {request.tenant!r} exceeded "
                    f"{self.config.rate_per_tenant}/s",
                )
                self.metrics_aggregator.record(outcome)
                return outcome
        budget = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        deadline = (
            Deadline.after(budget, clock=self.clock) if budget is not None else None
        )
        item = QueuedRequest(
            request=request, enqueued_at=self.clock.now(), deadline=deadline
        )
        if not self.queue.offer(item):
            outcome = Overloaded(
                request=request,
                reason=f"admission queue full ({self.config.queue_capacity})",
            )
            self.metrics_aggregator.record(outcome)
            return outcome
        self.metrics_aggregator.record_admitted()
        return None

    # -- execution -----------------------------------------------------------

    def step(self) -> list:
        """Execute one micro-batch; ``[]`` when the queue is empty."""
        batch = self.scheduler.next_batch()
        if batch is None:
            return []
        return self._execute_batch(batch)

    def drain(self) -> list:
        """Synchronously execute batches until the queue is empty."""
        outcomes: list = []
        while True:
            batch_outcomes = self.step()
            if not batch_outcomes and self.queue.depth == 0:
                return outcomes
            outcomes.extend(batch_outcomes)

    def _execute_batch(self, batch: Batch) -> list:
        self.metrics_aggregator.record_batch(len(batch))
        lock = self._db_lock_for(batch.db_id)
        outcomes = []
        # One database's batches run serialized: the warm engine and its
        # StageCache are not safe for concurrent stages; different
        # databases proceed in parallel on other workers.
        with lock:
            engine = self._engine_for(batch.db_id)
            breaker = self._breaker_for(batch.db_id)
            for item in batch.items:
                # Holding the db lock across execution (service-model
                # sleeps, provider generate) IS the serialization this
                # method exists to provide — per-database batches must
                # not interleave on a shared warm engine.
                outcome = self._execute_one(item, batch.tier, engine, breaker)  # staticcheck: disable=LOCK001
                self.metrics_aggregator.record(outcome)
                outcomes.append(outcome)
        return outcomes

    def _execute_one(self, item: QueuedRequest, tier: str, engine, breaker):
        request = item.request
        queue_s = self.clock.now() - item.enqueued_at
        if item.deadline is not None and item.deadline.expired():
            return DeadlineShed(
                request=request,
                reason=f"deadline expired after {queue_s:.3f}s in queue",
            )
        if tier == "sentinel":
            # Cheapest rung: answer without touching the engine, the
            # database, or the breaker.
            if self.service_model is not None:
                self.clock.sleep(self.service_model.cost("sentinel"))
            return Completed(
                request=request,
                sql=SENTINEL_SQL,
                tier="sentinel",
                latency_s=self.clock.now() - item.enqueued_at,
                queue_s=queue_s,
                trace=None,
            )
        if not breaker.admit():
            return BreakerShed(
                request=request,
                reason=f"circuit open for database {request.db_id!r}",
            )
        database = self.databases[request.db_id]
        if self.service_model is not None:
            self.clock.sleep(self.service_model.cost(tier))
        if item.deadline is not None and item.deadline.expired():
            # The service charge consumed the budget before execution
            # started — shed, and release the breaker probe cleanly.
            breaker.record_success()
            return DeadlineShed(
                request=request,
                reason="deadline expired before execution started",
            )
        # The progress-handler guard is a SQLite mechanism; backends
        # without the handler stack enforce deadlines inside their own
        # execute() and queue-time expiry is still checked above.
        guard = (
            ExecutionGuard(database, item.deadline)
            if item.deadline is not None
            and hasattr(database, "_push_progress_handler")
            else nullcontext()
        )
        try:
            with guard:
                result = self.parser.generate(
                    request.question, database, engine=engine, effort=tier
                )
        except DeadlineExceededError as exc:
            # Took too long *while executing*: counts against the
            # database's health, unlike queue-time expiry above.
            breaker.record_failure()
            return Failed(
                request=request,
                error=f"{type(exc).__name__}: {exc}",
                latency_s=self.clock.now() - item.enqueued_at,
            )
        except AllProvidersOpenError as exc:
            # No LM provider could take the call — the database did
            # nothing wrong, so release its breaker probe cleanly and
            # shed instead of failing.
            breaker.record_success()
            return ProviderShed(request=request, reason=str(exc))
        except ReproError as exc:
            breaker.record_failure()
            return Failed(
                request=request,
                error=f"{type(exc).__name__}: {exc}",
                latency_s=self.clock.now() - item.enqueued_at,
            )
        breaker.record_success()
        return Completed(
            request=request,
            sql=result.sql,
            tier=result.tier,
            latency_s=self.clock.now() - item.enqueued_at,
            queue_s=queue_s,
            trace=getattr(result, "trace", None),
        )

    # -- warm / drain handoff (sharding support) -----------------------------

    def warm(self, db_id: str) -> None:
        """Eagerly build the per-database execution state for ``db_id``.

        The sharding layer's rebalance protocol calls this on the new
        shard owner before the map swap, so the first post-swap request
        lands on a warm engine, breaker, and lock instead of paying the
        cold build inside its own latency.
        """
        if db_id not in self.databases:
            raise ServingError(f"cannot warm unknown database {db_id!r}")
        self._engine_for(db_id)
        self._breaker_for(db_id)
        self._db_lock_for(db_id)

    def handoff(self, db_id: str):
        """Release and return the warm engine for ``db_id`` (or ``None``).

        The old shard owner gives up its engine after draining; an
        inline-transport peer can :meth:`adopt` it, keeping the stage
        cache warm across the ownership change.  The breaker stays
        behind — its failure history describes *this* worker's view of
        the database and is folded into metrics instead of migrating.
        """
        with self._resources_lock:
            return self._engines.pop(db_id, None)

    def adopt(self, db_id: str, engine) -> None:
        """Install a handed-off warm engine for ``db_id``.

        If this server already built its own engine for the database,
        the warmer of the two caches wins by absorbing the other's
        entries (see :meth:`repro.engine.StageCache.absorb`).
        """
        if engine is None:
            return
        with self._resources_lock:
            existing = self._engines.get(db_id)
            if existing is None:
                self._engines[db_id] = engine
                return
            mine = getattr(existing, "cache", None)
            theirs = getattr(engine, "cache", None)
            if mine is not None and theirs is not None:
                mine.absorb(theirs)

    # -- per-resource state --------------------------------------------------

    def _engine_for(self, db_id: str):
        with self._resources_lock:
            engine = self._engines.get(db_id)
            if engine is None and hasattr(self.parser, "build_engine"):
                engine = self._engines[db_id] = self.parser.build_engine(
                    cache=StageCache(capacity=self.config.cache_capacity)
                )
            return engine

    def _breaker_for(self, db_id: str) -> CircuitBreaker:
        with self._resources_lock:
            breaker = self._breakers.get(db_id)
            if breaker is None:
                breaker = self._breakers[db_id] = CircuitBreaker(
                    failure_threshold=self.config.breaker_failure_threshold,
                    recovery_timeout_s=self.config.breaker_recovery_s,
                    clock=self.clock,
                    name=db_id,
                )
            return breaker

    def _bucket_for(self, tenant: str) -> TokenBucket:
        with self._resources_lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    rate=self.config.rate_per_tenant,
                    burst=self.config.burst_per_tenant,
                    clock=self.clock,
                )
            return bucket

    def _db_lock_for(self, db_id: str) -> threading.Lock:
        with self._resources_lock:
            lock = self._db_locks.get(db_id)
            if lock is None:
                lock = self._db_locks[db_id] = threading.Lock()
            return lock

    # -- observability -------------------------------------------------------

    def metrics(self) -> ServerMetrics:
        """A frozen snapshot of counters, latencies, and cache traffic.

        Provider-router statistics come in as plain dicts via the
        parser's duck-typed ``router.stats_dict()`` — serving never
        imports ``repro.lm.providers`` (ARCH006); stub parsers without
        a router simply report no provider rows.
        """
        with self._resources_lock:
            cache_stats = [
                engine.cache.stats
                for engine in self._engines.values()
                if getattr(engine, "cache", None) is not None
            ]
            breaker_stats = [
                breaker.stats.as_dict() for breaker in self._breakers.values()
            ]
        router = getattr(self.parser, "router", None)
        router_stats = router.stats_dict() if router is not None else None
        return self.metrics_aggregator.snapshot(
            queue_depth=self.queue.depth,
            cache_stats=cache_stats,
            router_stats=router_stats,
            breaker_stats=breaker_stats,
        )
