"""A small two-layer MLP binary classifier trained with AdamW.

This is the "compact neural network for schema classification" the
paper's complexity discussion mentions (§4): fast at inference, cheap
to train per dataset.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.nn.optimizer import AdamW


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))


class MLPClassifier:
    """``input -> tanh hidden -> sigmoid`` binary classifier."""

    def __init__(self, input_dim: int, hidden_dim: int = 16, seed: int = 0):
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("input_dim and hidden_dim must be positive")
        rng = np.random.default_rng(seed)
        scale1 = 1.0 / np.sqrt(input_dim)
        scale2 = 1.0 / np.sqrt(hidden_dim)
        self.w1 = rng.normal(0.0, scale1, size=(input_dim, hidden_dim))
        self.b1 = np.zeros(hidden_dim)
        self.w2 = rng.normal(0.0, scale2, size=(hidden_dim, 1))
        self.b2 = np.zeros(1)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim

    @property
    def params(self) -> list[np.ndarray]:
        return [self.w1, self.b1, self.w2, self.b2]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probabilities for a ``(n, input_dim)`` feature matrix."""
        features = np.atleast_2d(features)
        hidden = np.tanh(features @ self.w1 + self.b1)
        return _sigmoid(hidden @ self.w2 + self.b2).ravel()

    def loss_and_grads(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[float, list[np.ndarray]]:
        """Binary cross-entropy and gradients for one batch."""
        features = np.atleast_2d(features)
        labels = np.asarray(labels, dtype=np.float64).ravel()
        n = features.shape[0]
        hidden_pre = features @ self.w1 + self.b1
        hidden = np.tanh(hidden_pre)
        logits = (hidden @ self.w2 + self.b2).ravel()
        probs = _sigmoid(logits)
        eps = 1e-12
        loss = -float(
            np.mean(labels * np.log(probs + eps) + (1 - labels) * np.log(1 - probs + eps))
        )
        dlogits = (probs - labels)[:, None] / n
        grad_w2 = hidden.T @ dlogits
        grad_b2 = dlogits.sum(axis=0)
        dhidden = dlogits @ self.w2.T * (1.0 - hidden ** 2)
        grad_w1 = features.T @ dhidden
        grad_b1 = dhidden.sum(axis=0)
        return loss, [grad_w1, grad_b1, grad_w2, grad_b2]

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 0.01,
        seed: int = 0,
    ) -> list[float]:
        """Train with AdamW; returns the per-epoch mean loss curve."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if features.shape[0] != labels.shape[0]:
            raise TrainingError(
                f"{features.shape[0]} feature rows but {labels.shape[0]} labels"
            )
        if features.shape[0] == 0:
            raise TrainingError("cannot fit classifier on an empty dataset")
        if features.shape[1] != self.input_dim:
            raise TrainingError(
                f"expected {self.input_dim} features, got {features.shape[1]}"
            )
        optimizer = AdamW(self.params, lr=lr, weight_decay=0.01)
        rng = np.random.default_rng(seed)
        history: list[float] = []
        indices = np.arange(features.shape[0])
        for _ in range(epochs):
            rng.shuffle(indices)
            losses: list[float] = []
            for start in range(0, len(indices), batch_size):
                batch = indices[start:start + batch_size]
                loss, grads = self.loss_and_grads(features[batch], labels[batch])
                optimizer.step(grads)
                losses.append(loss)
            history.append(float(np.mean(losses)))
        return history

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"w1": self.w1, "b1": self.b1, "w2": self.w2, "b2": self.b2}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.w1 = np.asarray(state["w1"], dtype=np.float64)
        self.b1 = np.asarray(state["b1"], dtype=np.float64)
        self.w2 = np.asarray(state["w2"], dtype=np.float64)
        self.b2 = np.asarray(state["b2"], dtype=np.float64)
