"""Minimal neural-network substrate shared across the library.

Implements exactly the pieces the paper's training recipes need —
AdamW (β₁=0.9, β₂=0.95, ε=1e−8, decoupled weight decay), a cosine
learning-rate schedule with optional warmup decaying to a floor, and a
small MLP binary classifier used by the schema-item classifier.
"""

from repro.nn.optimizer import AdamW
from repro.nn.schedule import CosineSchedule
from repro.nn.mlp import MLPClassifier

__all__ = ["AdamW", "CosineSchedule", "MLPClassifier"]
