"""Cosine learning-rate schedule with warmup and a floor.

The paper's pre-training uses cosine decay without warmup ending at a
tenth of the peak rate (§5.2); its fine-tuning adds a linear warmup over
the first 5% of steps (§9.1.4).  Both are instances of this schedule.
"""

from __future__ import annotations

import math


class CosineSchedule:
    """Learning rate as a function of the training step."""

    def __init__(
        self,
        peak_lr: float,
        total_steps: int,
        warmup_fraction: float = 0.0,
        final_fraction: float = 0.1,
    ):
        if peak_lr <= 0.0:
            raise ValueError(f"peak_lr must be positive, got {peak_lr}")
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(f"warmup_fraction must lie in [0, 1), got {warmup_fraction}")
        if not 0.0 <= final_fraction <= 1.0:
            raise ValueError(f"final_fraction must lie in [0, 1], got {final_fraction}")
        self.peak_lr = peak_lr
        self.total_steps = total_steps
        self.warmup_steps = int(round(total_steps * warmup_fraction))
        self.final_lr = peak_lr * final_fraction

    def lr_at(self, step: int) -> float:
        """Learning rate for 0-indexed ``step`` (clamped to the schedule)."""
        step = max(0, min(step, self.total_steps))
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        decay_steps = max(1, self.total_steps - self.warmup_steps)
        progress = (step - self.warmup_steps) / decay_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * min(1.0, progress)))
        return self.final_lr + (self.peak_lr - self.final_lr) * cosine
