"""AdamW with decoupled weight decay and gradient clipping.

Matches the paper's pre-training/fine-tuning recipe (§5.2): AdamW with
β₁ = 0.9, β₂ = 0.95, ε = 1e−8, weight decay 0.1, global-norm gradient
clipping at 1.0.  Parameters are a flat list of numpy arrays updated in
place.
"""

from __future__ import annotations

import numpy as np


class AdamW:
    """AdamW over a list of numpy parameter arrays (updated in place)."""

    def __init__(
        self,
        params: list[np.ndarray],
        lr: float = 5e-5,
        betas: tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.1,
        clip_norm: float = 1.0,
    ):
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._step = 0

    def clip_gradients(self, grads: list[np.ndarray]) -> float:
        """Scale ``grads`` in place to global norm ``clip_norm``; return the norm."""
        total = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
        if self.clip_norm > 0.0 and total > self.clip_norm:
            scale = self.clip_norm / (total + 1e-12)
            for grad in grads:
                grad *= scale
        return total

    def step(self, grads: list[np.ndarray], lr: float | None = None) -> float:
        """Apply one AdamW update; returns the pre-clip gradient norm."""
        if len(grads) != len(self.params):
            raise ValueError(
                f"got {len(grads)} gradients for {len(self.params)} parameters"
            )
        norm = self.clip_gradients(grads)
        self._step += 1
        step_lr = self.lr if lr is None else lr
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, grad, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param -= step_lr * (m_hat / (np.sqrt(v_hat) + self.eps))
            if self.weight_decay > 0.0:
                param -= step_lr * self.weight_decay * param
        return norm
