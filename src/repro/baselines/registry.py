"""Baseline registry: configured stand-ins for the paper's comparators.

Each :class:`BaselineSpec` bundles a parser factory with the protocol
the method uses (supervised fine-tuning vs few-shot prompting, number
of shots, retrieval mode) and a simulated per-sample API latency for
the closed models (§9.7 reports ~60 s/sample for DIN-SQL + GPT-4).

Capability calibration: closed frontier models get wide embedders,
deep slot search and near-complete skeleton banks — strong zero/few-
shot parsers that SFT CodeS tiers can nevertheless overtake on a
benchmark's own distribution, which is exactly Table 5/6's finding.
Fine-tuned seq2seq baselines reuse the SFT machinery with each method's
signature feature: PICARD's grammar-constrained decoding maps to the
execution-guided beam (always on here), RESDSQL's schema filtering is
its headline contribution (kept on), while the plain T5 baseline loses
the value retriever and pattern-aware retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.config import ModelConfig
from repro.core.parser import CodeSParser
from repro.errors import CheckpointError
from repro.promptgen.options import PromptOptions


def _closed(name: str, level: float, latency_s: float) -> ModelConfig:
    """A closed-model tier; ``level`` interpolates capability knobs."""
    return ModelConfig(
        name=name,
        family="closed",
        incremental=False,
        params_billions=175.0,
        embed_dim=int(192 + 192 * level),
        ngram_order=4,
        skeleton_capacity=int(1500 + 3000 * level),
        slot_depth=4 + int(2 * level),
        max_context_chars=8_192,
    )


#: Simulated closed-model checkpoints (capability, api latency seconds).
CLOSED_MODELS: dict[str, tuple[ModelConfig, float]] = {
    "gpt-4": (_closed("gpt-4", 1.0, 12.0), 12.0),
    "chatgpt": (_closed("chatgpt", 0.45, 4.0), 4.0),
    "codex": (_closed("codex", 0.6, 5.0), 5.0),
    "palm-2": (_closed("palm-2", 0.7, 6.0), 6.0),
    "claude-2": (_closed("claude-2", 0.7, 6.0), 6.0),
    "gpt-3.5": (_closed("gpt-3.5", 0.45, 4.0), 4.0),
}


@dataclass
class BaselineSpec:
    """How to build and run one baseline."""

    name: str
    make_parser: Callable[[], CodeSParser] = field(repr=False)
    mode: str = "fewshot"  # "sft" | "fewshot"
    shots: int = 0
    retriever_mode: str = "pattern-aware"
    simulated_api_latency_s: float = 0.0
    notes: str = ""


def _closed_parser(model: str, options: PromptOptions | None = None) -> CodeSParser:
    config, _ = CLOSED_MODELS[model]
    return CodeSParser(config=config, options=options)


def _spec_prompting(
    name: str, model: str, shots: int, notes: str,
    options: PromptOptions | None = None,
) -> BaselineSpec:
    config, latency = CLOSED_MODELS[model]
    return BaselineSpec(
        name=name,
        make_parser=lambda: _closed_parser(model, options),
        mode="fewshot",
        shots=shots,
        simulated_api_latency_s=latency,
        notes=notes,
    )


def _spec_sft(
    name: str,
    tier: str,
    notes: str,
    options: PromptOptions | None = None,
    use_pattern_similarity: bool = True,
) -> BaselineSpec:
    return BaselineSpec(
        name=name,
        make_parser=lambda: CodeSParser(
            tier, options=options, use_pattern_similarity=use_pattern_similarity
        ),
        mode="sft",
        notes=notes,
    )


def _build_registry() -> dict[str, BaselineSpec]:
    no_values = PromptOptions().without("value_retriever")
    specs = [
        # Prompting-based methods (Table 5 / 6 comparators).
        _spec_prompting(
            "gpt-4-fewshot", "gpt-4", 3, "plain few-shot GPT-4"
        ),
        _spec_prompting(
            "din-sql-gpt-4", "gpt-4", 5,
            "decomposed prompting + self-correction on GPT-4",
        ),
        _spec_prompting(
            "dail-sql-gpt-4", "gpt-4", 5, "example-matching prompt on GPT-4"
        ),
        _spec_prompting(
            "c3-chatgpt", "chatgpt", 0, "zero-shot calibrated ChatGPT"
        ),
        _spec_prompting(
            "chatgpt", "chatgpt", 1, "plain ChatGPT prompting"
        ),
        _spec_prompting(
            "chatgpt-cot", "chatgpt", 3, "ChatGPT + chain-of-thought"
        ),
        _spec_prompting(
            "codex", "codex", 3, "Codex few-shot (Self-Debugging tier)"
        ),
        _spec_prompting(
            "sql-palm-fewshot", "palm-2", 5, "few-shot PaLM-2"
        ),
        _spec_prompting(
            "claude-2", "claude-2", 3, "few-shot Claude-2"
        ),
        _spec_prompting(
            "gpt-3.5", "gpt-3.5", 3, "GPT-3.5 used by the augmentation pipeline"
        ),
        # Fine-tuning-based methods.
        _spec_sft(
            "t5-3b-picard", "llama2-7b",
            "seq2seq + grammar-constrained decoding; no value retriever, "
            "question-only retrieval",
            options=no_values,
            use_pattern_similarity=False,
        ),
        _spec_sft(
            "resdsql-3b-natsql", "llama2-13b",
            "schema-filter pioneer; question-only retrieval, no "
            "representative values in its serialization",
            options=PromptOptions().without("representative_values"),
            use_pattern_similarity=False,
        ),
        _spec_sft(
            "graphix-t5-3b", "llama2-13b",
            "graph-aware encoder; modeled as a mid-tier SFT parser",
            options=no_values,
        ),
        _spec_sft("sft-llama2-7b", "llama2-7b", "fine-tuned Llama-2-7B"),
        _spec_sft("sft-llama2-13b", "llama2-13b", "fine-tuned Llama-2-13B"),
        BaselineSpec(
            name="sql-palm-finetuned",
            make_parser=lambda: _closed_parser("palm-2"),
            mode="sft",
            notes="fine-tuned PaLM-2",
        ),
        BaselineSpec(
            name="smbop",
            make_parser=lambda: CodeSParser(
                "codegen2-7b",
                options=PromptOptions().without("value_retriever"),
                use_pattern_similarity=False,
            ),
            mode="sft",
            notes="semi-autoregressive bottom-up parser (weak baseline)",
        ),
    ]
    return {spec.name: spec for spec in specs}


def evaluate_baseline(
    spec: BaselineSpec,
    dataset,
    use_external_knowledge: bool = False,
    limit: int | None = None,
    **eval_kwargs,
):
    """Run one baseline with its own protocol on ``dataset``'s dev split."""
    from repro.core.retriever import DemonstrationRetriever
    from repro.eval.harness import evaluate_parser, pair_samples

    parser = spec.make_parser()
    if spec.mode == "sft":
        parser.fit(
            pair_samples(dataset), use_external_knowledge=use_external_knowledge
        )
        return evaluate_parser(
            parser, dataset, name=spec.name, limit=limit,
            use_external_knowledge=use_external_knowledge, **eval_kwargs,
        )
    retriever = None
    if spec.shots > 0:
        retriever = DemonstrationRetriever(
            dataset.train, embedder=parser.embedder, mode=spec.retriever_mode
        )
    return evaluate_parser(
        parser, dataset, name=spec.name, limit=limit,
        demonstrations_per_question=spec.shots,
        demonstration_retriever=retriever,
        use_external_knowledge=use_external_knowledge,
        **eval_kwargs,
    )


_REGISTRY = _build_registry()

#: All registered baseline names.
BASELINE_NAMES = tuple(sorted(_REGISTRY))


def make_baseline(name: str) -> BaselineSpec:
    """Look up a baseline spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CheckpointError(
            f"unknown baseline {name!r}; known: {list(BASELINE_NAMES)}"
        ) from None
