"""Baseline systems the paper compares against.

Closed-source prompting LLMs (GPT-4, ChatGPT, Codex, PaLM-2, Claude-2)
cannot be run offline; they are *simulated* as prompting-mode parsers
with calibrated capability knobs (see DESIGN.md's substitution table).
Fine-tuned baselines (T5+PICARD, RESDSQL+NatSQL, Graphix-T5, SmBoP,
SFT Llama-2) are configured variants of the same parsing machinery with
each method's distinguishing feature enabled or disabled.
"""

from repro.baselines.registry import (
    BASELINE_NAMES,
    BaselineSpec,
    make_baseline,
)

__all__ = ["BASELINE_NAMES", "BaselineSpec", "make_baseline"]
