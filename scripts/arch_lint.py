#!/usr/bin/env python
"""Architectural lint for the repro source tree.

Six rules, all enforced in tier-1 (see ``tests/test_arch_lint.py``):

ARCH001 — raw clock reads.  ``time.time()``, ``time.monotonic()``,
    ``time.perf_counter()``, ``datetime.now()`` and ``datetime.utcnow()``
    are forbidden everywhere in ``src/repro/`` except
    ``reliability/clock.py``.  Timing must flow through the injectable
    :class:`repro.reliability.clock.Clock` protocol so tests can use
    ``FakeClock`` instead of sleeping.

ARCH002 — blanket exception swallowing.  ``except Exception`` /
    ``except BaseException`` / bare ``except:`` handlers must either
    re-raise or classify the failure into the library taxonomy (raise a
    ``ReproError`` subtype, or record it via a recognised failure sink
    such as ``failures[...]`` / ``FailureRecord`` / ``classify*``).
    Anything else silently converts programming errors into wrong
    results.

ARCH003 — ad-hoc case-insensitive identifier comparison.  Equality
    comparisons against ``.lower()`` calls (``a.lower() == b.lower()``)
    outside ``sqlgen/`` and ``analysis/`` are forbidden: SQL identifier
    identity is owned by ``repro.sqlgen.ast.identifier_key`` /
    ``ColumnRef.key()`` / ``SchemaCatalog`` lookups.  Scattered
    ``.lower()`` spellings drift (casefold vs. lower, one side
    normalized but not the other) and make identifier semantics
    unauditable.  Normalized-key dict/set *lookups* (``name.lower() in
    mapping``) are the sanctioned catalog pattern and stay legal.

ARCH004 — engine stage encapsulation.  The staged-inference internals
    (``repro.engine._stages``) may only be imported inside
    ``engine/``; everyone else composes pipelines through
    ``repro.engine.build_default_engine`` or
    ``CodeSParser.build_engine``.  And no module outside ``core/`` or
    ``engine/`` may re-implement the inline generation pipeline —
    detected as importing both of its private ingredients
    (``repro.core.slotfill`` and ``repro.core.ranking``) in one
    module.  The decomposition only stays a refactor if exactly one
    place wires the stages together.

ARCH005 — concurrency containment.  Thread, lock, and queue
    primitives (``threading``, ``_thread``, ``queue``,
    ``multiprocessing``, ``concurrent.*``) may only be imported inside
    ``serving/`` and ``reliability/``.  The engine, the parser, and
    every model layer stay single-threaded and deterministic; all
    concurrency lives behind the serving facade where it is tested on
    a FakeClock.

ARCH006 — provider encapsulation.  LM provider *implementations*
    (``repro.lm.providers.local`` / ``.sim`` / ``.router``) may only
    be imported inside ``lm/providers/`` and ``lm/registry.py`` — the
    registry is the sanctioned construction point
    (``LMRegistry.router_for``).  And ``engine/`` and ``serving/`` may
    import nothing from ``repro.lm.providers`` at all (not even the
    protocol or config): the engine reaches providers through
    ``parser.router`` and serving reads router statistics as plain
    dicts, so failover topology can change without touching either
    layer.

Usage::

    python scripts/arch_lint.py [root]       # default root: src/repro

Exit status is nonzero when violations are found.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

#: module-qualified call targets whose direct use is a raw clock read.
RAW_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

#: files (relative to the lint root, posix-style) allowed to read raw clocks.
CLOCK_ALLOWLIST = ("reliability/clock.py",)

#: identifiers whose presence in a handler marks taxonomy classification.
TAXONOMY_SINKS = ("failures", "FailureRecord", "classify")

#: path prefixes (relative to the lint root) that own identifier
#: normalization and may compare ``.lower()`` results directly.
IDENTIFIER_ALLOWLIST_PREFIXES = ("sqlgen/", "analysis/")

#: case-normalizing string methods ARCH003 looks for in comparisons.
CASE_NORMALIZERS = ("lower", "casefold")

#: the stage-internals module only ``engine/`` may import (ARCH004).
STAGE_INTERNALS_MODULE = "repro.engine._stages"

#: path prefix (relative to the lint root) that owns the stage internals.
ENGINE_PREFIX = "engine/"

#: importing ALL of these in one module outside ``core/``/``engine/``
#: marks an inline re-implementation of the generation pipeline.
PIPELINE_INGREDIENTS = ("repro.core.slotfill", "repro.core.ranking")

#: path prefixes allowed to compose the pipeline ingredients.
PIPELINE_ALLOWLIST_PREFIXES = ("core/", ENGINE_PREFIX)

#: top-level modules whose import marks concurrency (ARCH005).
CONCURRENCY_MODULES = ("threading", "_thread", "queue", "multiprocessing", "concurrent")

#: path prefixes (relative to the lint root) allowed to use concurrency
#: primitives.
CONCURRENCY_ALLOWLIST_PREFIXES = ("serving/", "reliability/")

#: the provider package ARCH006 polices.
PROVIDERS_PACKAGE = "repro.lm.providers"

#: concrete implementation submodules importable only via the registry.
#: (``base`` and ``config`` are interface/data and stay importable
#: outside the banned zones; the public package API is always legal
#: outside them too.)
PROVIDER_IMPL_MODULES = ("local", "sim", "router")

#: locations allowed to import provider implementation submodules.
PROVIDER_ALLOWLIST_PREFIXES = ("lm/providers/",)
PROVIDER_ALLOWLIST_FILES = ("lm/registry.py",)

#: path prefixes that may not import ANYTHING from the provider package.
PROVIDER_BANNED_PREFIXES = ("engine/", "serving/")


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _call_target(node: ast.Call) -> tuple[str, str] | None:
    """(module-ish, attr) for ``mod.attr(...)`` calls, else None."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
        # datetime.datetime.now() -> ("datetime", "now")
        return (func.value.attr, func.attr)
    return None


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _handler_classifies(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name and any(sink in name for sink in TAXONOMY_SINKS):
            return True
    return False


def _is_blanket(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except:
        return True
    node = handler.type
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(item, ast.Name) and item.id in ("Exception", "BaseException")
            for item in node.elts
        )
    return isinstance(node, ast.Name) and node.id in ("Exception", "BaseException")


def _is_case_normalizer_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and not node.args
        and not node.keywords
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in CASE_NORMALIZERS
    )


def _compares_case_normalized(node: ast.Compare) -> bool:
    """Does an Eq/NotEq comparison have a ``.lower()`` operand?

    Membership tests (``key in mapping``) are excluded: looking up a
    normalized key in a normalized mapping is the catalog pattern, not
    an ad-hoc comparison.
    """
    if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
        return False
    operands = [node.left, *node.comparators]
    return any(_is_case_normalizer_call(operand) for operand in operands)


def _imported_modules(node: ast.AST) -> list[str]:
    """Module names an Import/ImportFrom node references.

    ``from repro.engine import _stages`` reports both ``repro.engine``
    and ``repro.engine._stages`` so submodule imports spelled either
    way are visible to ARCH004.
    """
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom) and node.module:
        return [node.module] + [
            f"{node.module}.{alias.name}" for alias in node.names
        ]
    return []


def _provider_impl_module(module: str) -> bool:
    """Is ``module`` (or a name inside) a provider implementation?"""
    for impl in PROVIDER_IMPL_MODULES:
        qualified = f"{PROVIDERS_PACKAGE}.{impl}"
        if module == qualified or module.startswith(qualified + "."):
            return True
    return False


def lint_source(
    source: str,
    path: str,
    clock_exempt: bool = False,
    identifier_exempt: bool = False,
    engine_exempt: bool = False,
    pipeline_exempt: bool = False,
    concurrency_exempt: bool = False,
    provider_exempt: bool = False,
    provider_banned: bool = False,
) -> list[Violation]:
    """Lint one module's source text; ``path`` is used in messages only."""
    tree = ast.parse(source, filename=path)
    violations: list[Violation] = []
    pipeline_imports: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            modules = _imported_modules(node)
            if not engine_exempt and any(
                module == STAGE_INTERNALS_MODULE
                or module.startswith(STAGE_INTERNALS_MODULE + ".")
                for module in modules
            ):
                violations.append(
                    Violation(
                        path=path,
                        line=node.lineno,
                        rule="ARCH004",
                        message=(
                            "stage internals import (repro.engine._stages) "
                            "outside engine/; compose pipelines via "
                            "repro.engine.build_default_engine"
                        ),
                    )
                )
            if not pipeline_exempt:
                for module in modules:
                    for ingredient in PIPELINE_INGREDIENTS:
                        if module == ingredient or module.startswith(
                            ingredient + "."
                        ):
                            pipeline_imports.setdefault(ingredient, node.lineno)
            if not provider_exempt:
                provider_touched = any(
                    module == PROVIDERS_PACKAGE
                    or module.startswith(PROVIDERS_PACKAGE + ".")
                    for module in modules
                )
                if provider_banned and provider_touched:
                    violations.append(
                        Violation(
                            path=path,
                            line=node.lineno,
                            rule="ARCH006",
                            message=(
                                f"{PROVIDERS_PACKAGE} import inside engine/ "
                                "or serving/; the engine consumes providers "
                                "via parser.router and serving reads router "
                                "stats as plain dicts"
                            ),
                        )
                    )
                elif any(_provider_impl_module(module) for module in modules):
                    violations.append(
                        Violation(
                            path=path,
                            line=node.lineno,
                            rule="ARCH006",
                            message=(
                                "provider implementation import "
                                f"({PROVIDERS_PACKAGE}.{{{'|'.join(PROVIDER_IMPL_MODULES)}}}) "
                                "outside lm/providers/; construct routers "
                                "via LMRegistry.router_for or the "
                                "repro.lm.providers package API"
                            ),
                        )
                    )
            if not concurrency_exempt:
                for module in modules:
                    if any(
                        module == primitive or module.startswith(primitive + ".")
                        for primitive in CONCURRENCY_MODULES
                    ):
                        violations.append(
                            Violation(
                                path=path,
                                line=node.lineno,
                                rule="ARCH005",
                                message=(
                                    f"concurrency primitive import ({module}) "
                                    "outside serving/ and reliability/; the "
                                    "engine and model layers stay "
                                    "single-threaded"
                                ),
                            )
                        )
                        break
        if (
            isinstance(node, ast.Compare)
            and not identifier_exempt
            and _compares_case_normalized(node)
        ):
            violations.append(
                Violation(
                    path=path,
                    line=node.lineno,
                    rule="ARCH003",
                    message=(
                        "ad-hoc .lower() identifier comparison; route "
                        "through repro.sqlgen.ast.identifier_key / "
                        "ColumnRef.key() / SchemaCatalog lookups"
                    ),
                )
            )
        if isinstance(node, ast.Call) and not clock_exempt:
            target = _call_target(node)
            if target in RAW_CLOCK_CALLS:
                violations.append(
                    Violation(
                        path=path,
                        line=node.lineno,
                        rule="ARCH001",
                        message=(
                            f"raw clock call {target[0]}.{target[1]}(); "
                            "inject repro.reliability.clock.Clock instead"
                        ),
                    )
                )
        elif isinstance(node, ast.ExceptHandler) and _is_blanket(node):
            if not (_handler_reraises(node) or _handler_classifies(node)):
                violations.append(
                    Violation(
                        path=path,
                        line=node.lineno,
                        rule="ARCH002",
                        message=(
                            "blanket except swallows errors; re-raise or "
                            "classify into the failure taxonomy"
                        ),
                    )
                )
    if len(pipeline_imports) == len(PIPELINE_INGREDIENTS):
        violations.append(
            Violation(
                path=path,
                line=max(pipeline_imports.values()),
                rule="ARCH004",
                message=(
                    "imports every private pipeline ingredient "
                    f"({', '.join(PIPELINE_INGREDIENTS)}); the inline "
                    "generation pipeline is wired only in core/ and "
                    "engine/ — go through the staged engine"
                ),
            )
        )
    return violations


def lint_tree(root: Path) -> list[Violation]:
    """Lint every ``.py`` file under ``root``."""
    violations: list[Violation] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        violations.extend(
            lint_source(
                path.read_text(encoding="utf-8"),
                relative,
                clock_exempt=relative in CLOCK_ALLOWLIST,
                identifier_exempt=relative.startswith(
                    IDENTIFIER_ALLOWLIST_PREFIXES
                ),
                engine_exempt=relative.startswith(ENGINE_PREFIX),
                pipeline_exempt=relative.startswith(
                    PIPELINE_ALLOWLIST_PREFIXES
                ),
                concurrency_exempt=relative.startswith(
                    CONCURRENCY_ALLOWLIST_PREFIXES
                ),
                provider_exempt=(
                    relative.startswith(PROVIDER_ALLOWLIST_PREFIXES)
                    or relative in PROVIDER_ALLOWLIST_FILES
                ),
                provider_banned=relative.startswith(PROVIDER_BANNED_PREFIXES),
            )
        )
    return violations


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "src" / "repro"
    if not root.is_dir():
        print(f"arch_lint: no such directory {root}", file=sys.stderr)
        return 2
    violations = lint_tree(root)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"arch_lint: {len(violations)} violation(s)")
        return 1
    print(f"arch_lint: OK ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
