#!/usr/bin/env python3
"""Architecture lint shim — the real engine is :mod:`repro.staticcheck`.

Historically this script carried the rule implementations; they now
live as registered rules in ``src/repro/staticcheck/rules/`` (ARCH001–
ARCH006 plus STAGE001/DET001/LOCK001/SUP001), with each rule's
documentation on the rule class itself — render it with ``--docs`` or
``repro check --explain RULE``.  This shim keeps the old entry point
and output format for CI muscle memory::

    python scripts/arch_lint.py [root]      # default: src/repro
    python scripts/arch_lint.py --docs      # render every rule's docs

Exit 0 and ``arch_lint: OK (<root>)`` when clean; exit 1 and one
``path:line: RULE message`` line per violation otherwise.  The
repo-root ``staticcheck_baseline.json`` is honoured when present, so
this shim and ``repro check --baseline`` agree.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import staticcheck  # noqa: E402  (path bootstrap above)

BASELINE_PATH = REPO_ROOT / "staticcheck_baseline.json"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] in ("--docs", "-d"):
        print(staticcheck.REGISTRY.render_docs())
        return 0
    root = Path(argv[0]) if argv else REPO_ROOT / "src" / "repro"
    baseline = (
        staticcheck.load_baseline(BASELINE_PATH)
        if BASELINE_PATH.exists()
        else None
    )
    result = staticcheck.check_tree(root, baseline=baseline)
    if result.ok():
        print(f"arch_lint: OK ({root})")
        return 0
    for finding in result.findings:
        print(finding.render())
    for entry in result.stale_baseline:
        print(
            f"{entry.path}: stale baseline entry {entry.rule} "
            f"({entry.fingerprint}); remove it from {BASELINE_PATH.name}"
        )
    total = len(result.findings) + len(result.stale_baseline)
    print(f"arch_lint: {total} violation(s)")
    return 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `arch_lint.py --docs | head`
        sys.exit(0)
