#!/usr/bin/env python
"""Regenerate the staged-engine golden parity file.

Runs the generation pipeline over every bundled gold set and records,
per dev example, the fields the engine refactor must preserve exactly:
predicted SQL, degradation ``tier``, ``beam_deduped`` and
``executions_avoided``.  The checked-in file
(``tests/golden/engine_parity.json``) was captured from the
pre-refactor ``CodeSParser.generate`` monolith; ``pytest -m engine``
replays the staged engine against it, so any behavioural drift in the
decomposition shows up as a golden mismatch.

Usage::

    PYTHONPATH=src python scripts/gen_engine_golden.py

Deterministic: fixed model tier, fixed seeds, bundled synthetic data.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import CodeSParser  # noqa: E402
from repro.datasets import (  # noqa: E402
    build_aminer_simplified,
    build_bank_financials,
    build_bird,
    build_dr_spider,
    build_spider,
    build_spider_variant,
)
from repro.datasets.drspider import all_perturbation_names  # noqa: E402
from repro.eval.harness import pair_samples  # noqa: E402

GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "engine_parity.json"

#: Model tier the parity run uses (smallest: fastest, same code paths).
MODEL = "codes-1b"

#: Dev examples recorded per primary benchmark / per Dr.Spider set.
LIMIT_PRIMARY = 24
LIMIT_DRSPIDER = 6


def _record(parser: CodeSParser, dataset, limit: int) -> list[dict]:
    rows = []
    for index, example in enumerate(dataset.dev[:limit]):
        database = dataset.database_of(example)
        result = parser.generate(example.question, database)
        rows.append(
            {
                "index": index,
                "db_id": example.db_id,
                "question": example.question,
                "sql": result.sql,
                "tier": result.tier,
                "beam_deduped": result.beam_deduped,
                "executions_avoided": result.executions_avoided,
            }
        )
    return rows


def generate_golden() -> dict:
    builders = {
        "spider": build_spider,
        "bird": build_bird,
        "spider-syn": lambda: build_spider_variant("spider-syn"),
        "spider-realistic": lambda: build_spider_variant("spider-realistic"),
        "spider-dk": lambda: build_spider_variant("spider-dk"),
        "bank_financials": build_bank_financials,
        "aminer_simplified": build_aminer_simplified,
    }
    payload: dict = {
        "model": MODEL,
        "limits": {"primary": LIMIT_PRIMARY, "dr_spider": LIMIT_DRSPIDER},
        "datasets": {},
    }
    for name, build in builders.items():
        dataset = build()
        parser = CodeSParser(MODEL)
        parser.fit(pair_samples(dataset))
        payload["datasets"][name] = _record(parser, dataset, LIMIT_PRIMARY)
        print(f"{name}: {len(payload['datasets'][name])} examples")

    # Dr.Spider perturbations have no train split: evaluated with the
    # spider-fitted parser, exactly how the robustness benches run them.
    spider = build_spider()
    parser = CodeSParser(MODEL)
    parser.fit(pair_samples(spider))
    for perturbation in all_perturbation_names():
        dataset = build_dr_spider(perturbation, spider=spider)
        key = f"dr-spider/{perturbation}"
        payload["datasets"][key] = _record(parser, dataset, LIMIT_DRSPIDER)
        print(f"{key}: {len(payload['datasets'][key])} examples")
    return payload


def main() -> int:
    payload = generate_golden()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    total = sum(len(rows) for rows in payload["datasets"].values())
    print(f"wrote {total} golden examples to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
