"""Quickstart: fine-tune CodeS on the Spider-like benchmark and ask it
questions.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CodeSParser,
    build_spider,
    evaluate_parser,
    pair_samples,
    print_table,
)


def main() -> None:
    print("Building the Spider-like benchmark (synthetic, deterministic)...")
    spider = build_spider()
    print(spider.summary())

    print("\nFine-tuning CodeS-7B (schema classifier + template index)...")
    parser = CodeSParser("codes-7b")
    parser.fit(pair_samples(spider))

    print("\nAsking a few dev questions:")
    for example in spider.dev[:5]:
        database = spider.database_of(example)
        result = parser.generate(example.question, database)
        rows = database.execute(result.sql)
        print(f"  Q: {example.question}")
        print(f"  SQL: {result.sql}")
        print(f"  -> {rows[:3]}{' ...' if len(rows) > 3 else ''}\n")

    print("Evaluating on the full dev split (EX + TS):")
    result = evaluate_parser(parser, spider, compute_ts=True, ts_variants=2)
    print_table([result.as_row()], title="SFT CodeS-7B on Spider-like dev")


if __name__ == "__main__":
    main()
