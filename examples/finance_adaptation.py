"""New-domain adaptation on Bank-Financials (paper §7 / §9.6).

Starting from a handful of "manually annotated" seed pairs, the
bi-directional augmentation pipeline builds a training set, and the
script compares the paper's three deployment pathways:

1. few-shot in-context learning with the seed pairs only;
2. supervised fine-tuning on the augmented data;
3. zero-shot (bank-only) prompting for reference.

Run with::

    python examples/finance_adaptation.py
"""

from repro import (
    CodeSParser,
    DemonstrationRetriever,
    augment_domain,
    build_bank_financials,
    evaluate_parser,
    print_table,
)


def main() -> None:
    bank = build_bank_financials()
    print(bank.summary())
    database = bank.databases["bank_financials"]

    print("\nRunning bi-directional augmentation from the seed pairs...")
    augmented = augment_domain(bank, seed=3)
    print(f"  {len(bank.train)} seed pairs -> {len(augmented)} training pairs")
    print("  sample augmented pair:")
    sample = augmented[-1]
    print(f"    Q: {sample.question}")
    print(f"    SQL: {sample.sql}")

    rows = []

    zero_shot = CodeSParser("codes-7b")
    rows.append(
        evaluate_parser(
            zero_shot, bank, demonstrations_per_question=0, name="zero-shot CodeS-7B"
        ).as_row()
    )

    fewshot = CodeSParser("codes-7b")
    retriever = DemonstrationRetriever(bank.train, embedder=fewshot.embedder)
    rows.append(
        evaluate_parser(
            fewshot, bank, demonstrations_per_question=3,
            demonstration_retriever=retriever, name="3-shot CodeS-7B",
        ).as_row()
    )

    sft = CodeSParser("codes-7b")
    sft.fit([(example, database) for example in augmented])
    rows.append(
        evaluate_parser(sft, bank, name="SFT CodeS-7B on augmented data").as_row()
    )

    print_table(rows, title="Bank-Financials deployment pathways (Table 10 shape)")


if __name__ == "__main__":
    main()
