"""Robustness evaluation across Spider variants (paper §9.4).

Trains SFT CodeS-7B once on the Spider-like training set and evaluates
it on the original dev set plus Spider-Syn, Spider-Realistic and
Spider-DK, then on a sample of Dr.Spider perturbations.

Run with::

    python examples/robustness_eval.py
"""

from repro import (
    CodeSParser,
    build_dr_spider,
    build_spider,
    build_spider_variant,
    evaluate_parser,
    pair_samples,
    print_table,
)
from repro.datasets import SPIDER_VARIANTS


def main() -> None:
    spider = build_spider()
    parser = CodeSParser("codes-7b")
    parser.fit(pair_samples(spider))

    rows = [evaluate_parser(parser, spider, name="spider (original)").as_row()]
    for variant_name in SPIDER_VARIANTS:
        variant = build_spider_variant(variant_name, spider=spider)
        rows.append(evaluate_parser(parser, variant, name=variant_name).as_row())
    print_table(rows, title="SFT CodeS-7B across Spider variants")

    sample_perturbations = [
        "keyword-synonym", "schema-abbreviation", "value-synonym", "sort-order",
    ]
    rows = []
    for perturbation in sample_perturbations:
        perturbed = build_dr_spider(perturbation, spider=spider)
        rows.append(
            evaluate_parser(parser, perturbed, name=f"dr-spider {perturbation}").as_row()
        )
    print_table(rows, title="SFT CodeS-7B on sample Dr.Spider perturbations")


if __name__ == "__main__":
    main()
