"""Incremental pre-training demo (paper §5) with the numpy transformer.

Two parts:

1. the fast n-gram prior: a StarCoder-style base mix is incrementally
   pre-trained on the SQL-centric corpus (2 epochs SQL, 1 NL,
   1 NL-to-code) and its held-out SQL perplexity drops;
2. the from-scratch decoder-only transformer (multi-query attention,
   learned absolute position embeddings, AdamW + cosine decay) is
   trained on a small SQL corpus and its perplexity improves too.

Run with::

    python examples/pretrain_lm.py
"""

from repro.lm import (
    CodeTokenizer,
    CorpusConfig,
    IncrementalPretrainer,
    TransformerConfig,
    TransformerLM,
    Vocabulary,
    build_corpus,
    pretrain_base_lm,
)
from repro.lm.corpus import sql_corpus


def ngram_demo() -> None:
    print("=== n-gram prior: incremental pre-training (paper recipe) ===")
    corpus = build_corpus(CorpusConfig(seed=0))
    held_out = sql_corpus(150, seed=999)

    base = pretrain_base_lm("starcoder", corpus=corpus)
    before = base.perplexity(held_out)
    print(f"StarCoder-style base mix: held-out SQL perplexity = {before:.1f}")
    print(f"  SQL documents absorbed: {len(base.seen_sql)}")

    codes = IncrementalPretrainer(corpus=corpus).run(base)
    after = codes.perplexity(held_out)
    print(f"After incremental pre-training: perplexity = {after:.1f}")
    print(f"  SQL documents absorbed: {len(codes.seen_sql)}")
    print(f"  -> {100 * (before - after) / before:.1f}% relative improvement\n")


def transformer_demo() -> None:
    print("=== decoder-only transformer (multi-query attention) ===")
    train_docs = sql_corpus(60, seed=1)
    held_docs = sql_corpus(20, seed=2)
    vocab = Vocabulary.build(train_docs + held_docs, max_size=512)
    tokenizer = CodeTokenizer()
    encode = lambda doc: vocab.encode(tokenizer.tokenize(doc))

    config = TransformerConfig(
        vocab_size=len(vocab), dim=32, n_heads=4, n_layers=2, max_len=48
    )
    model = TransformerLM(config, seed=0)
    print(f"parameters: {config.parameter_count:,}")

    train_seqs = [encode(doc) for doc in train_docs]
    held_seqs = [encode(doc) for doc in held_docs]
    print(f"perplexity before training: {model.perplexity(held_seqs, vocab):.1f}")
    history = model.fit(train_seqs, vocab, epochs=8, batch_size=8, lr=5e-3)
    print(f"training loss: {history[0]:.3f} -> {history[-1]:.3f}")
    print(f"perplexity after training:  {model.perplexity(held_seqs, vocab):.1f}")

    prefix = vocab.encode(tokenizer.tokenize("SELECT"), add_markers=False)
    generated = model.generate([vocab.bos_id, *prefix], vocab, max_new_tokens=12)
    print("greedy sample:", " ".join(vocab.decode(generated)))


if __name__ == "__main__":
    ngram_demo()
    transformer_demo()
