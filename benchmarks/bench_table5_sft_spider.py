"""Table 5: supervised fine-tuning on Spider-like dev (EX% and TS%).

SFT CodeS tiers vs fine-tuning-based and prompting-based baselines.
Reproduced shape: SFT CodeS-7B/15B reach the top of the table,
mid-size CodeS already beats the GPT-4 prompting methods, and the
fine-tuned general-purpose LMs (Llama-2) trail the same-size CodeS.
"""

from repro.baselines import make_baseline
from repro.baselines.registry import evaluate_baseline
from repro.config import CODES_TIERS
from repro.eval.harness import evaluate_parser

FINETUNED_BASELINES = (
    "t5-3b-picard",
    "resdsql-3b-natsql",
    "graphix-t5-3b",
    "sql-palm-finetuned",
    "sft-llama2-7b",
    "sft-llama2-13b",
)
PROMPTING_BASELINES = (
    "gpt-4-fewshot",
    "c3-chatgpt",
    "din-sql-gpt-4",
    "dail-sql-gpt-4",
    "sql-palm-fewshot",
    "codex",
)


def test_table5_sft_spider(benchmark, spider, parsers, report):
    suites = {}

    def run():
        rows = []
        for name in FINETUNED_BASELINES + PROMPTING_BASELINES:
            spec = make_baseline(name)
            result = evaluate_baseline(
                spec, spider, compute_ts=True, ts_variants=2, suites=suites
            )
            rows.append(
                {
                    "method": name,
                    "kind": "fine-tuned" if name in FINETUNED_BASELINES else "prompting",
                    "EX%": round(100 * result.ex, 1),
                    "TS%": round(100 * result.ts, 1),
                }
            )
        for tier in CODES_TIERS:
            result = evaluate_parser(
                parsers.sft(tier, spider), spider,
                compute_ts=True, ts_variants=2, suites=suites,
            )
            rows.append(
                {
                    "method": f"SFT {tier}",
                    "kind": "ours",
                    "EX%": round(100 * result.ex, 1),
                    "TS%": round(100 * result.ts, 1),
                }
            )
        rows.sort(key=lambda row: row["EX%"])
        report("table5_sft_spider", rows, "Table 5 — SFT evaluation on Spider dev")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_method = {row["method"]: row for row in rows}
    ours_best = max(
        by_method[f"SFT {tier}"]["EX%"] for tier in CODES_TIERS
    )
    # New SOTA: the best CodeS tier tops every baseline.
    assert all(
        ours_best >= row["EX%"] for row in rows if row["kind"] != "ours"
    )
    # Mid-size CodeS already matches the GPT-4 prompting methods.
    assert (
        by_method["SFT codes-3b"]["EX%"] >= by_method["din-sql-gpt-4"]["EX%"] - 2.5
    )
    # TS is never above EX (it is the stricter metric).
    assert all(row["TS%"] <= row["EX%"] + 1e-9 for row in rows)
