"""Section 6.2: coarse-to-fine value retrieval vs exhaustive LCS.

The paper's complexity argument: running the O(f*u) LCS against every
stored value is too slow for value-rich databases, so a BM25 index
first narrows the candidate set.  This benchmark measures both paths on
a value-rich database and checks they agree on the top match.
"""

import pytest

from repro.datasets.blueprints import blueprint_by_name
from repro.datasets.generator import GenerationOptions, instantiate_blueprint
from repro.retrieval import ValueRetriever

QUESTION = "How many customers from Jesenik bought products of brand quartz?"


@pytest.fixture(scope="module")
def big_retriever():
    gdb = instantiate_blueprint(
        blueprint_by_name("retail"), "speed_test",
        GenerationOptions(rows_per_table=900, seed=0),
    )
    return ValueRetriever(gdb.database)


def test_coarse_to_fine_retrieval_speed(benchmark, big_retriever):
    matches = benchmark(big_retriever.retrieve, QUESTION)
    assert any(match.value.strip() == "Jesenik" for match in matches)


def test_exhaustive_lcs_speed(benchmark, big_retriever):
    matches = benchmark.pedantic(
        big_retriever.retrieve_exhaustive, args=(QUESTION,), rounds=3, iterations=1
    )
    assert any(match.value.strip() == "Jesenik" for match in matches)


def test_both_paths_agree_and_coarse_is_faster(benchmark, big_retriever, report):
    import time

    def measure():
        start = time.perf_counter()
        coarse = big_retriever.retrieve(QUESTION)
        coarse_time = time.perf_counter() - start
        start = time.perf_counter()
        exhaustive = big_retriever.retrieve_exhaustive(QUESTION)
        exhaustive_time = time.perf_counter() - start
        return coarse, coarse_time, exhaustive, exhaustive_time

    coarse, coarse_time, exhaustive, exhaustive_time = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    rows = [
        {
            "path": "BM25 -> LCS (coarse-to-fine)",
            "indexed values": big_retriever.indexed_value_count,
            "latency ms": round(1000 * coarse_time, 2),
            "top match": coarse[0].render() if coarse else "-",
        },
        {
            "path": "exhaustive LCS",
            "indexed values": big_retriever.indexed_value_count,
            "latency ms": round(1000 * exhaustive_time, 2),
            "top match": exhaustive[0].render() if exhaustive else "-",
        },
    ]
    report("value_retriever_speed", rows, "§6.2 — value retrieval latency")
    assert coarse[0].value == exhaustive[0].value
    assert coarse_time < exhaustive_time
