"""Provider failover under chaos: availability, hedging, SQL drift.

Two experiments, both seeded and run on a FakeClock:

1. **Router loadgen** — 2,000 score requests against a
   healthy/flaky/dead provider mix (the primary is a latency-realistic
   remote with a 30% injected failure rate and a heavy latency tail;
   the backup is a healthy remote; the standby is a dead endpoint),
   with and without hedged requests.  Reported per leg: availability,
   p50/p95 effective latency, failovers and retries per 1k requests,
   and hedge accounting.  The acceptance bar: ≥99% availability under
   the 30%-failure primary, and hedging must reduce p95 latency in the
   same scenario.

2. **End-to-end SQL drift** — the full parser answering Spider dev
   questions with its LM prior routed through a flaky-primary router
   (30% injected failures, local failover target), compared
   byte-for-byte against the default single-local-provider parser.
   Every simulated provider wraps the same local LM, so failover must
   never change an answer: drift is asserted to be zero on every
   request that succeeds.
"""

from repro.config import get_model_config
from repro.errors import ReproError
from repro.lm.providers import ProviderSpec, RouterConfig, build_router
from repro.lm.registry import DEFAULT_LM_REGISTRY
from repro.reliability import FakeClock

from repro import CodeSParser, pair_samples

N_REQUESTS = 2000
FAILURE_RATE = 0.3
HEDGE_DELAY_S = 0.06
DRIFT_LIMIT = 24


def _chaos_config(hedge_delay_s):
    return RouterConfig(
        providers=(
            ProviderSpec(
                name="primary",
                kind="remote",
                priority=0,
                failure_rate=FAILURE_RATE,
                latency_median_s=0.03,
                latency_tail_p=0.10,
                latency_tail_mult=10.0,
                timeout_s=1.0,
                seed=11,
            ),
            ProviderSpec(
                name="backup",
                kind="remote",
                priority=1,
                latency_median_s=0.03,
                seed=12,
            ),
            ProviderSpec(name="standby", kind="dead", priority=2),
        ),
        retry_max_attempts=2,
        hedge_delay_s=hedge_delay_s,
        probe_interval_s=0.5,
        breaker_failure_threshold=3,
        breaker_recovery_timeout_s=2.0,
        name="failover-bench",
    )


PAYLOADS = (
    "SELECT name FROM singer WHERE age > 30",
    "SELECT count(*) FROM concert",
    "SELECT avg(capacity) FROM stadium",
    "SELECT name FROM singer ORDER BY age DESC",
)


def _run_leg(lm, hedge_delay_s):
    clock = FakeClock()
    router = build_router(_chaos_config(hedge_delay_s), lm, clock=clock)
    texts = lm.seen_sql[:8] or list(PAYLOADS)
    succeeded = 0
    for index in range(N_REQUESTS):
        try:
            router.score(texts[index % len(texts)])
            succeeded += 1
        except ReproError:
            pass
        clock.advance(0.005)
    stats = router.stats_dict()
    per_k = 1000.0 / N_REQUESTS
    return {
        "leg": "hedged" if hedge_delay_s is not None else "no hedge",
        "availability": round(succeeded / N_REQUESTS, 4),
        "p50 s": round(router.latency_quantile(0.50), 4),
        "p95 s": round(router.latency_quantile(0.95), 4),
        "failovers/1k": round(stats["failovers"] * per_k, 2),
        "retries/1k": round(stats["retries"] * per_k, 2),
        "hedges": stats["hedges_fired"],
        "hedge wins": stats["hedge_wins"],
        "discarded": stats["hedge_discarded"],
    }


def test_failover_availability_and_hedging(benchmark, report):
    lm = DEFAULT_LM_REGISTRY.lm_for(get_model_config("codes-7b"))

    def run():
        return [_run_leg(lm, None), _run_leg(lm, HEDGE_DELAY_S)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "provider_failover",
        rows,
        title=(
            f"Provider failover: {FAILURE_RATE:.0%}-failure flaky primary, "
            f"{N_REQUESTS} requests (seeded FakeClock)"
        ),
    )
    no_hedge, hedged = rows
    assert no_hedge["availability"] >= 0.99
    assert hedged["availability"] >= 0.99
    # hedging exists to cut the tail: p95 must improve.
    assert hedged["p95 s"] < no_hedge["p95 s"]
    assert no_hedge["failovers/1k"] > 0


def test_zero_sql_drift_under_flaky_primary(benchmark, spider, report):
    flaky_providers = RouterConfig(
        providers=(
            ProviderSpec(
                name="primary",
                kind="flaky",
                priority=0,
                failure_rate=FAILURE_RATE,
                seed=13,
            ),
            ProviderSpec(name="fallback", kind="local", priority=1),
        ),
        retry_max_attempts=2,
        breaker_failure_threshold=3,
        breaker_recovery_timeout_s=2.0,
        name="drift-bench",
    )

    def run():
        baseline = CodeSParser("codes-1b")
        chaotic = CodeSParser("codes-1b", providers=flaky_providers)
        pairs = pair_samples(spider)
        baseline.fit(pairs)
        chaotic.fit(pairs)
        examples = spider.dev[:DRIFT_LIMIT]
        succeeded = 0
        drifted = 0
        for example in examples:
            database = spider.database_of(example)
            expected = baseline.generate(example.question, database).sql
            try:
                actual = chaotic.generate(example.question, database).sql
            except ReproError:
                continue
            succeeded += 1
            if actual != expected:
                drifted += 1
        router_stats = chaotic.router.stats_dict()
        return {
            "requests": len(examples),
            "succeeded": succeeded,
            "drifted": drifted,
            "injected failures": router_stats["providers"][0]["failures"],
            "router retries": router_stats["retries"],
            "failovers": router_stats["failovers"],
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "provider_sql_drift",
        [row],
        title=(
            f"End-to-end SQL drift: {FAILURE_RATE:.0%}-failure flaky primary "
            "vs default parser (Spider dev)"
        ),
    )
    assert row["succeeded"] / row["requests"] >= 0.99
    assert row["drifted"] == 0
    # the chaos was real: faults were injected and routed around.
    assert row["injected failures"] > 0
