"""Ablations of design choices DESIGN.md calls out beyond Table 9.

- execution-guided beam (first executable of 4) vs plain top-1;
- pre-training corpus mixture (SQL-heavy vs code-mixed vs NL-only) as
  it reaches the parser through the skeleton bank and the LM prior.
"""

from repro.core import CodeSParser
from repro.eval.execution import execution_match
from repro.eval.harness import evaluate_parser, pair_samples

LIMIT = 40


def test_execution_guided_beam(benchmark, spider, parsers, report):
    """Beam + execution check vs taking the top-ranked candidate."""

    def run():
        parser = parsers.sft("codes-7b", spider)
        guided_hits = 0
        top1_hits = 0
        examples = spider.dev[:LIMIT]
        for example in examples:
            database = spider.database_of(example)
            result = parser.generate(example.question, database)
            guided_hits += int(
                execution_match(database, result.sql, example.sql)
            )
            top1_hits += int(
                execution_match(database, result.candidates[0], example.sql)
            )
        rows = [
            {
                "selection": "execution-guided beam (paper §9.1.4)",
                "EX%": round(100 * guided_hits / len(examples), 1),
            },
            {
                "selection": "top-1 candidate",
                "EX%": round(100 * top1_hits / len(examples), 1),
            },
        ]
        report(
            "ablation_execution_guided_beam",
            rows,
            "Design ablation — execution-guided candidate selection",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows[0]["EX%"] >= rows[1]["EX%"]


def test_pretraining_mixture(benchmark, spider, report):
    """Family corpus mixtures, evaluated zero-shot on Spider-like dev."""

    def run():
        rows = []
        for model, mixture in (
            ("codes-7b", "SQL-heavy (incremental)"),
            ("starcoderbase-7b", "code-mixed"),
            ("llama2-7b", "NL-heavy"),
        ):
            parser = CodeSParser(model)
            result = evaluate_parser(
                parser, spider, demonstrations_per_question=0, limit=LIMIT
            )
            rows.append(
                {
                    "model": model,
                    "pre-training mixture": mixture,
                    "skeleton bank": parser.skeleton_bank_size,
                    "zero-shot EX%": round(100 * result.ex, 1),
                }
            )
        report(
            "ablation_pretraining_mixture",
            rows,
            "Design ablation — pre-training corpus mixture (zero-shot)",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_model = {row["model"]: row for row in rows}
    assert (
        by_model["codes-7b"]["zero-shot EX%"]
        >= by_model["llama2-7b"]["zero-shot EX%"]
    )
    assert (
        by_model["codes-7b"]["skeleton bank"]
        > by_model["starcoderbase-7b"]["skeleton bank"]
    )
