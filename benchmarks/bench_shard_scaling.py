"""Shard scaling: cluster throughput at 1, 2, and 4 process workers.

The workload is the seeded open-loop Poisson loadgen over a spider
build with 8 dev databases, replayed through a :class:`ShardRouter`
whose workers are real forked processes (``ProcessWorkerHandle``).
Every configuration — including the single-process ``Server``
reference — serves with the same :class:`ServiceModel`, which charges
a flat per-request service cost on the system clock.  That cost stands
in for the model-inference latency that dominates a real CodeS
deployment (this repository's parser is an analytic stand-in that
answers in single-digit milliseconds); it is charged as a real sleep,
so worker processes overlap it exactly the way N model replicas
overlap accelerator latency, while the CPU-side stages still run and
still produce the actual SQL.

Correctness is checked the hard way: every sharded outcome's SQL must
be byte-identical to what the single-process ``Server`` returned for
the same request.  The ring seed is chosen deterministically so the 8
databases split evenly across both the 2- and 4-worker rings —
ops picks the seed for balance, the bench does the same search.

Scaling gate: >= 2.5x throughput at 4 workers vs. 1 worker, with zero
SQL drift anywhere.
"""

import time

from repro import CodeSParser, build_spider, pair_samples
from repro.datasets.spider import SpiderConfig
from repro.serving import (
    Completed,
    ProcessWorkerHandle,
    Server,
    ServerConfig,
    ShardMap,
    ShardRouter,
    ShardingConfig,
    default_worker_ids,
)
from repro.serving.loadgen import ServiceModel, poisson_workload
from repro.serving.sharding import Warm, run_loadgen_sharded

TIER = "codes-1b"
N_REQUESTS = 96
#: Open-loop arrival rate far above the service rate: the cluster is
#: saturated almost immediately, so makespan measures service capacity.
RATE = 1000.0
WORKER_COUNTS = (1, 2, 4)

#: Wider dev split than the shared benchmark config: 8 databases give
#: the consistent-hash ring something to balance at 4 workers.
SCALING_SPIDER = SpiderConfig(
    n_train_databases=6, n_dev_databases=8,
    train_per_database=30, dev_per_database=12,
)

#: Emulated model-inference latency per request (see module docstring).
SERVICE = ServiceModel(full_s=0.06, skeleton_s=0.015, sentinel_s=0.002)

SERVER_CONFIG = ServerConfig(
    queue_capacity=N_REQUESTS,
    batch_size=8,
    # High watermarks: every request runs the full tier; this is a
    # throughput comparison, not an effort-degradation study.
    skeleton_watermark=4 * N_REQUESTS,
    sentinel_watermark=8 * N_REQUESTS,
)

SHARDING_CONFIG = ShardingConfig(
    heartbeat_interval_s=2.0,
    # A worker mid-batch answers its heartbeat late; give it headroom
    # before supervision calls that a crash.
    heartbeat_timeout_s=10.0,
    control_timeout_s=60.0,
)


def _balanced_seed(db_ids) -> int:
    """The first ring seed that splits ``db_ids`` evenly at 2 and 4 workers.

    Deterministic: same databases, same seed.  Falls back to the
    least-imbalanced candidate if no perfect split exists in range.
    """
    best = None
    for seed in range(200):
        spreads = []
        for workers in (2, 4):
            shard_map = ShardMap(default_worker_ids(workers), seed=seed)
            counts = [
                len(dbs) for dbs in shard_map.assignments(db_ids).values()
            ]
            spreads.append(max(counts) - min(counts))
        score = (max(spreads), sum(spreads))
        if best is None or score < best[1]:
            best = (seed, score)
        if score == (0, 0):
            break
    return best[0]


def test_shard_scaling(benchmark, report):
    spider = build_spider(SCALING_SPIDER)
    db_ids = sorted({example.db_id for example in spider.dev})
    seed = _balanced_seed(db_ids)
    parser = CodeSParser(TIER)
    parser.fit(pair_samples(spider))
    arrivals = poisson_workload(spider.dev, n=N_REQUESTS, rate=RATE)

    def server_factory():
        # Runs post-fork inside each worker child: fresh SQLite
        # connections and engines, fitted parser inherited by fork.
        return Server(
            parser, spider.databases, config=SERVER_CONFIG,
            service_model=SERVICE,
        )

    def run():
        # Single-process reference: the pre-sharding serving path.  Its
        # outcomes are the byte-for-byte ground truth for every cluster.
        server = server_factory()
        start = time.perf_counter()
        for arrival in arrivals:
            assert server.submit(arrival.request) is None
        baseline_outcomes = server.drain()
        baseline_s = time.perf_counter() - start
        assert len(baseline_outcomes) == N_REQUESTS
        assert all(isinstance(o, Completed) for o in baseline_outcomes)
        expected = {
            outcome.request.request_id: outcome.sql
            for outcome in baseline_outcomes
        }

        rows = [
            {
                "configuration": "single-process Server",
                "requests": N_REQUESTS,
                "makespan s": round(baseline_s, 3),
                "rps": round(N_REQUESTS / baseline_s, 2),
                "speedup vs 1w": "",
                "drift": 0,
            }
        ]
        throughput = {}
        total_drift = 0
        for workers in WORKER_COUNTS:
            shard_map = ShardMap(
                default_worker_ids(workers),
                virtual_nodes=SHARDING_CONFIG.virtual_nodes,
                seed=seed,
            )
            router = ShardRouter(
                shard_map,
                lambda worker_id: ProcessWorkerHandle(
                    worker_id, server_factory, idle_poll_s=0.002
                ),
                db_ids,
                config=SHARDING_CONFIG,
            )
            try:
                # Warm outside the timed region: each worker builds its
                # shards' engines, and the metrics round trip doubles as
                # a readiness barrier (commands are processed in order).
                for worker_id, shard in shard_map.assignments(db_ids).items():
                    router.handles[worker_id].send(Warm(db_ids=shard))
                router.metrics()

                result = run_loadgen_sharded(
                    router, arrivals, title=f"{workers}-worker cluster"
                )
            finally:
                router.shutdown()
            assert len(result.outcomes) == N_REQUESTS
            assert all(isinstance(o, Completed) for o in result.outcomes)
            drift = sum(
                1
                for outcome in result.outcomes
                if outcome.sql != expected[outcome.request.request_id]
            )
            total_drift += drift
            throughput[workers] = result.throughput_rps
            rows.append(
                {
                    "configuration": f"sharded x{workers} (process)",
                    "requests": N_REQUESTS,
                    "makespan s": round(result.makespan_s, 3),
                    "rps": round(result.throughput_rps, 2),
                    "speedup vs 1w": round(
                        result.throughput_rps / throughput[1], 2
                    ),
                    "drift": drift,
                }
            )
        report(
            "shard_scaling",
            rows,
            f"shard scaling (spider dev, {len(db_ids)} databases, "
            f"{N_REQUESTS} Poisson arrivals at {RATE:g}/s, "
            f"{SERVICE.full_s * 1000:g}ms emulated model latency, "
            f"ring seed {seed})",
        )
        return throughput, total_drift

    throughput, total_drift = benchmark.pedantic(run, rounds=1, iterations=1)
    # Byte-identical SQL: sharding must not change a single answer.
    assert total_drift == 0
    # Sharding must be worth the processes: >= 2.5x at 4 workers.
    scaling = throughput[4] / throughput[1]
    assert scaling >= 2.5, f"4-worker scaling only {scaling:.2f}x"
