"""Table 6: supervised fine-tuning on BIRD-like dev/test (EX% and VES%).

Dev is the standard BIRD-like build; "test" is a hidden split generated
with a disjoint seed.  Reproduced shapes: SFT CodeS beats the prompting
baselines by a wide margin on the harder benchmark, external knowledge
lifts everyone, and VES tracks EX.
"""

from repro.baselines import make_baseline
from repro.baselines.registry import evaluate_baseline
from repro.config import CODES_TIERS
from repro.eval.harness import evaluate_parser

BASELINES = ("chatgpt", "chatgpt-cot", "din-sql-gpt-4", "sft-llama2-7b")
LIMIT = 36


def test_table6_sft_bird(benchmark, bird, bird_test, parsers, report):
    def run():
        rows = []
        for name in BASELINES:
            spec = make_baseline(name)
            row = {"method": name}
            for label, dataset in (("dev", bird), ("test", bird_test)):
                plain = evaluate_baseline(
                    spec, dataset, compute_ves=True, ves_runs=2, limit=LIMIT
                )
                with_ek = evaluate_baseline(
                    spec, dataset, use_external_knowledge=True,
                    compute_ves=True, ves_runs=2, limit=LIMIT,
                )
                row[f"{label} EX%"] = round(100 * plain.ex, 1)
                row[f"{label} VES%"] = round(100 * plain.ves, 1)
                row[f"{label}+EK EX%"] = round(100 * with_ek.ex, 1)
                row[f"{label}+EK VES%"] = round(100 * with_ek.ves, 1)
            rows.append(row)
        for tier in CODES_TIERS:
            row = {"method": f"SFT {tier}"}
            for label, dataset in (("dev", bird), ("test", bird_test)):
                plain = evaluate_parser(
                    parsers.sft(tier, dataset), dataset,
                    compute_ves=True, ves_runs=2, limit=LIMIT,
                )
                with_ek = evaluate_parser(
                    parsers.sft(tier, dataset, use_external_knowledge=True),
                    dataset, use_external_knowledge=True,
                    compute_ves=True, ves_runs=2, limit=LIMIT,
                )
                row[f"{label} EX%"] = round(100 * plain.ex, 1)
                row[f"{label} VES%"] = round(100 * plain.ves, 1)
                row[f"{label}+EK EX%"] = round(100 * with_ek.ex, 1)
                row[f"{label}+EK VES%"] = round(100 * with_ek.ves, 1)
            rows.append(row)
        report("table6_sft_bird", rows, "Table 6 — SFT evaluation on BIRD dev/test")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_method = {row["method"]: row for row in rows}
    best_codes = max(by_method[f"SFT {t}"]["dev EX%"] for t in CODES_TIERS)
    # SFT CodeS clearly beats plain ChatGPT prompting on the hard benchmark.
    assert best_codes > by_method["chatgpt"]["dev EX%"]
    # External knowledge lifts CodeS on dev.
    assert (
        by_method["SFT codes-7b"]["dev+EK EX%"]
        >= by_method["SFT codes-7b"]["dev EX%"]
    )
    # The hidden test split behaves like dev (within a generous band).
    assert abs(
        by_method["SFT codes-7b"]["test EX%"] - by_method["SFT codes-7b"]["dev EX%"]
    ) <= 30.0
