"""Table 8: Dr.Spider — 17 perturbation test sets in three categories.

Models are fine-tuned on the Spider-like training split; each
perturbation set is evaluated separately and macro-averaged per
category (DB / NLQ / SQL) plus globally.  Reproduced shapes: the
DBcontent-equivalence set is the weak spot of the sparse value
retriever, schema-abbreviation is handled well thanks to comments, and
larger CodeS tiers average higher.
"""

from repro.datasets import build_dr_spider
from repro.datasets.drspider import DR_SPIDER_PERTURBATIONS
from repro.eval.harness import evaluate_parser

TIERS = ("codes-1b", "codes-3b", "codes-7b", "codes-15b")


def test_table8_dr_spider(benchmark, spider, parsers, report):
    def run():
        perturbed = {
            name: build_dr_spider(name, spider=spider)
            for names in DR_SPIDER_PERTURBATIONS.values()
            for name in names
        }
        rows = []
        averages: dict[str, dict[str, list[float]]] = {
            tier: {category: [] for category in DR_SPIDER_PERTURBATIONS}
            for tier in TIERS
        }
        for category, names in DR_SPIDER_PERTURBATIONS.items():
            for name in names:
                row = {"category": category, "perturbation": name,
                       "n": len(perturbed[name].dev)}
                for tier in TIERS:
                    parser = parsers.sft(tier, spider)
                    ex = evaluate_parser(parser, perturbed[name]).ex
                    row[f"{tier} EX%"] = round(100 * ex, 1)
                    averages[tier][category].append(ex)
                rows.append(row)
        for category in DR_SPIDER_PERTURBATIONS:
            row = {"category": category, "perturbation": "AVERAGE", "n": "-"}
            for tier in TIERS:
                values = averages[tier][category]
                row[f"{tier} EX%"] = round(100 * sum(values) / len(values), 1)
            rows.append(row)
        row = {"category": "All", "perturbation": "GLOBAL AVERAGE", "n": "-"}
        for tier in TIERS:
            values = [v for cat in averages[tier].values() for v in cat]
            row[f"{tier} EX%"] = round(100 * sum(values) / len(values), 1)
        rows.append(row)
        report("table8_dr_spider", rows, "Table 8 — Dr.Spider perturbations (EX%)")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_key = {(row["category"], row["perturbation"]): row for row in rows}
    # Content-equivalence is the sparse retriever's weak spot within DB.
    db_rows = [row for row in rows if row["category"] == "DB"
               and row["perturbation"] != "AVERAGE"]
    weakest = min(db_rows, key=lambda row: row["codes-7b EX%"])
    assert weakest["perturbation"] == "DBcontent-equivalence"
    # Global average grows from the 1B to the 15B tier.
    global_row = by_key[("All", "GLOBAL AVERAGE")]
    assert global_row["codes-15b EX%"] >= global_row["codes-1b EX%"]
