"""Staged engine observability: where does inference time go?

Two tables from the engine's per-stage traces (timing via the
injectable Clock, aggregated by the batch harness):

1. per-stage mean latency per CodeS tier — which stage dominates as
   the tier's search budget grows (slot depth, beam width);
2. batch-mode StageCache savings — cold (a fresh engine, and thus a
   fresh cache, per question) vs. batch (one engine per database),
   showing which stages stop paying resource-construction costs.
"""

from repro.config import CODES_TIERS
from repro.engine import STAGE_NAMES
from repro.eval.harness import evaluate_parser

LIMIT = 16


def _mean_ms(result) -> dict[str, float]:
    return {
        stage: 1000 * agg["wall_s"] / max(1, agg["calls"])
        for stage, agg in result.stage_timings.items()
    }


def test_stage_latency_per_tier(benchmark, spider, parsers, report):
    def run():
        rows = []
        for tier in CODES_TIERS:
            parser = parsers.sft(tier, spider)
            result = evaluate_parser(parser, spider, limit=LIMIT, batch=True)
            means = _mean_ms(result)
            row: dict[str, object] = {"model": f"SFT {tier}"}
            for stage in STAGE_NAMES:
                row[f"{stage} ms"] = round(means.get(stage, 0.0), 3)
            row["total ms"] = round(sum(means.values()), 2)
            rows.append(row)
        report(
            "stage_latency_per_tier",
            rows,
            "staged engine — per-stage mean latency per tier (batch mode)",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Every tier exercises all nine stages.
    assert all(
        all(f"{stage} ms" in row for stage in STAGE_NAMES) for row in rows
    )
    # Bigger tiers search more: total stage time grows with tier size.
    assert rows[-1]["total ms"] >= rows[0]["total ms"] * 0.8


def test_stage_cache_batch_savings(benchmark, spider, parsers, report):
    def run():
        parser = parsers.sft("codes-1b", spider)
        examples = spider.dev[:LIMIT]

        # Cold: a fresh engine (fresh StageCache) per question — every
        # builder, analyzer, estimator and value index is rebuilt.
        cold: dict[str, float] = {stage: 0.0 for stage in STAGE_NAMES}
        for example in examples:
            engine = parser.build_engine()
            result = parser.generate(
                example.question, spider.database_of(example), engine=engine
            )
            for stage_trace in result.trace.stages:
                cold[stage_trace.stage] += stage_trace.wall_s

        # Batch: the harness holds one engine per database.
        batch = evaluate_parser(
            parser, spider, limit=LIMIT, name="batch", batch=True
        )

        rows = []
        for stage in STAGE_NAMES:
            agg = batch.stage_timings[stage]
            cold_ms = 1000 * cold[stage]
            batch_ms = 1000 * agg["wall_s"]
            rows.append(
                {
                    "stage": stage,
                    "cold ms": round(cold_ms, 2),
                    "batch ms": round(batch_ms, 2),
                    "saved %": round(100 * (1 - batch_ms / cold_ms), 1)
                    if cold_ms > 0
                    else 0.0,
                    "cache hits": int(agg["cache_hits"]),
                    "cache misses": int(agg["cache_misses"]),
                }
            )
        rows.append(
            {
                "stage": "TOTAL",
                "cold ms": round(1000 * sum(cold.values()), 2),
                "batch ms": round(
                    1000
                    * sum(a["wall_s"] for a in batch.stage_timings.values()),
                    2,
                ),
                "saved %": round(
                    100
                    * (
                        1
                        - sum(a["wall_s"] for a in batch.stage_timings.values())
                        / sum(cold.values())
                    ),
                    1,
                ),
                "cache hits": sum(
                    int(a["cache_hits"]) for a in batch.stage_timings.values()
                ),
                "cache misses": sum(
                    int(a["cache_misses"]) for a in batch.stage_timings.values()
                ),
            }
        )
        report(
            "stage_cache_savings",
            rows,
            f"staged engine — StageCache savings in batch mode "
            f"(spider, {LIMIT} questions)",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    total = rows[-1]
    # Reusing per-database resources must not be slower overall, and
    # the cache must actually be exercised.
    assert total["batch ms"] <= total["cold ms"] * 1.1
    assert total["cache hits"] > 0
