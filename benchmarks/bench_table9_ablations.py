"""Table 9: component ablations under 3-shot in-context learning.

Each arm removes one component: the pattern-aware similarity, the
demonstration retriever, the schema filter, the value retriever, or one
of the metadata pieces (types / comments / representative values /
keys).  Reproduced shapes: the value retriever and keys matter most on
BIRD, comments matter on BIRD's ambiguous schemas, and the retriever
ablations cost accuracy on Spider.
"""

from repro.core import CodeSParser
from repro.core.retriever import DemonstrationRetriever
from repro.eval.harness import evaluate_parser
from repro.promptgen.options import PromptOptions

TIERS = ("codes-1b", "codes-7b")
LIMIT = 32
SHOTS = 3

ARMS = (
    ("original", {}),
    ("-w/o pattern similarity", {"retriever_mode": "question-only",
                                 "use_pattern_similarity": False}),
    ("-w/o demonstration retriever", {"retriever_mode": "random"}),
    ("-w/o schema filter", {"without": "schema_filter"}),
    ("-w/o value retriever", {"without": "value_retriever"}),
    ("-w/o column data types", {"without": "column_types"}),
    ("-w/o comments", {"without": "comments"}),
    ("-w/o representative values", {"without": "representative_values"}),
    ("-w/o primary and foreign keys", {"without": "keys"}),
)


def _evaluate_arm(arm_config, tier, dataset):
    options = PromptOptions()
    if "without" in arm_config:
        options = options.without(arm_config["without"])
    parser = CodeSParser(
        tier,
        options=options,
        use_pattern_similarity=arm_config.get("use_pattern_similarity", True),
    )
    retriever = DemonstrationRetriever(
        dataset.train,
        embedder=parser.embedder,
        mode=arm_config.get("retriever_mode", "pattern-aware"),
    )
    return evaluate_parser(
        parser, dataset,
        demonstrations_per_question=SHOTS,
        demonstration_retriever=retriever,
        limit=LIMIT,
    ).ex


def test_table9_ablations(benchmark, spider, bird, report):
    def run():
        rows = []
        for arm_name, arm_config in ARMS:
            row = {"ablation": arm_name}
            for tier in TIERS:
                row[f"spider {tier} EX%"] = round(
                    100 * _evaluate_arm(arm_config, tier, spider), 1
                )
                row[f"bird {tier} EX%"] = round(
                    100 * _evaluate_arm(arm_config, tier, bird), 1
                )
            rows.append(row)
        report(
            "table9_ablations",
            rows,
            "Table 9 — 3-shot ICL ablations (Spider / BIRD dev)",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_arm = {row["ablation"]: row for row in rows}
    original = by_arm["original"]
    # The value retriever is crucial on BIRD's dirty values.
    assert (
        by_arm["-w/o value retriever"]["bird codes-7b EX%"]
        < original["bird codes-7b EX%"]
    )
    # Keys drive JOIN generation; removing them hurts on both datasets.
    assert (
        by_arm["-w/o primary and foreign keys"]["bird codes-7b EX%"]
        <= original["bird codes-7b EX%"]
    )
    # Comments matter on BIRD's ambiguous schemas.
    assert (
        by_arm["-w/o comments"]["bird codes-7b EX%"]
        <= original["bird codes-7b EX%"]
    )
