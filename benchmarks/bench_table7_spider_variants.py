"""Table 7: robustness on Spider-Syn / Spider-Realistic / Spider-DK.

Models are fine-tuned on the Spider-like training split and evaluated
on the perturbed dev sets.  Reproduced shapes: every model loses
accuracy under the shifts, the synonym shift hurts most, and CodeS
tiers degrade more gracefully than the weaker fine-tuned baselines.
"""

from repro.baselines import make_baseline
from repro.baselines.registry import evaluate_baseline
from repro.config import CODES_TIERS
from repro.datasets import SPIDER_VARIANTS, build_spider_variant
from repro.eval.harness import evaluate_parser

BASELINES = ("t5-3b-picard", "resdsql-3b-natsql")


def test_table7_spider_variants(benchmark, spider, parsers, report):
    def run():
        variants = {
            name: build_spider_variant(name, spider=spider)
            for name in SPIDER_VARIANTS
        }
        rows = []
        for name in BASELINES:
            spec = make_baseline(name)
            parser = spec.make_parser()
            from repro.eval.harness import pair_samples

            parser.fit(pair_samples(spider))
            row = {"method": name}
            row["spider EX%"] = round(100 * evaluate_parser(parser, spider).ex, 1)
            for variant_name, variant in variants.items():
                result = evaluate_parser(parser, variant)
                row[f"{variant_name} EX%"] = round(100 * result.ex, 1)
            rows.append(row)
        for tier in CODES_TIERS:
            parser = parsers.sft(tier, spider)
            row = {"method": f"SFT {tier}"}
            row["spider EX%"] = round(100 * evaluate_parser(parser, spider).ex, 1)
            for variant_name, variant in variants.items():
                result = evaluate_parser(parser, variant)
                row[f"{variant_name} EX%"] = round(100 * result.ex, 1)
            rows.append(row)
        report(
            "table7_spider_variants",
            rows,
            "Table 7 — robustness across Spider variants (trained on Spider)",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_method = {row["method"]: row for row in rows}
    codes7 = by_method["SFT codes-7b"]
    # Distribution shift costs accuracy on the question-side variants.
    assert codes7["spider-syn EX%"] <= codes7["spider EX%"]
    assert codes7["spider-realistic EX%"] <= codes7["spider EX%"]
    # CodeS-7B holds up at least as well as the weak seq2seq baseline.
    assert codes7["spider-syn EX%"] >= by_method["t5-3b-picard"]["spider-syn EX%"]
