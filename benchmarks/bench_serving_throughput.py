"""Serving throughput: micro-batched server vs. sequential baseline.

The sequential baseline answers each request with a fresh engine (and
therefore a fresh StageCache) — the cost profile of a naive
one-request-per-process deployment.  The batched path routes the same
requests through the :class:`repro.serving.Server`, whose scheduler
groups them by database so each batch reuses one warm engine per
database (shared link assets, memoized embeddings/features, per-SQL
score/lint/cost memos).

Correctness drift is checked per request: the server must return
byte-identical SQL to a direct ``generate()`` call for every question.
Watermarks are set high enough that no batch degrades below full
effort, so this is a pure throughput comparison, not a quality trade.
"""

import time

from repro.config import CODES_TIERS
from repro.serving import Completed, Server, ServerConfig, ServeRequest

LIMIT = 32


def _requests(spider):
    examples = spider.dev[:LIMIT]
    return [
        (
            ServeRequest(
                request_id=f"r{index:04d}",
                question=example.question,
                db_id=example.db_id,
            ),
            example,
        )
        for index, example in enumerate(examples)
    ]


def test_serving_throughput_vs_sequential(benchmark, spider, parsers, report):
    def run():
        rows = []
        speedups = []
        total_drift = 0
        for tier in CODES_TIERS:
            parser = parsers.sft(tier, spider)
            pairs = _requests(spider)

            # Sequential baseline: fresh engine per request.
            start = time.perf_counter()
            expected = {}
            for request, example in pairs:
                engine = parser.build_engine()
                result = parser.generate(
                    request.question,
                    spider.database_of(example),
                    engine=engine,
                )
                expected[request.request_id] = result.sql
            sequential_s = time.perf_counter() - start

            # Batched: micro-batches grouped by database share one warm
            # engine per database; watermarks high enough to stay at
            # full effort throughout.
            server = Server(
                parser,
                spider.databases,
                config=ServerConfig(
                    queue_capacity=LIMIT,
                    batch_size=8,
                    skeleton_watermark=4 * LIMIT,
                    sentinel_watermark=8 * LIMIT,
                ),
            )
            start = time.perf_counter()
            for request, _ in pairs:
                assert server.submit(request) is None
            outcomes = server.drain()
            batched_s = time.perf_counter() - start

            assert len(outcomes) == len(pairs)
            assert all(isinstance(outcome, Completed) for outcome in outcomes)
            drift = sum(
                1
                for outcome in outcomes
                if outcome.sql != expected[outcome.request.request_id]
            )
            total_drift += drift
            speedup = sequential_s / batched_s
            speedups.append(speedup)
            metrics = server.metrics()
            rows.append(
                {
                    "model": f"SFT {tier}",
                    "requests": len(pairs),
                    "sequential s": round(sequential_s, 3),
                    "batched s": round(batched_s, 3),
                    "sequential rps": round(len(pairs) / sequential_s, 2),
                    "batched rps": round(len(pairs) / batched_s, 2),
                    "speedup": round(speedup, 2),
                    "cache hit%": round(
                        100
                        * metrics.cache_hits
                        / max(1, metrics.cache_hits + metrics.cache_misses),
                        1,
                    ),
                    "drift": drift,
                }
            )
        report(
            "serving_throughput",
            rows,
            f"micro-batched serving vs. sequential (spider dev, "
            f"{LIMIT} requests, batch size 8)",
        )
        return rows, speedups, total_drift

    rows, speedups, total_drift = benchmark.pedantic(run, rounds=1, iterations=1)
    # Zero correctness drift: the server returns exactly the SQL a
    # direct generate() call produces, for every request on every tier.
    assert total_drift == 0
    # Batching must be worth it: >= 1.5x on at least one tier.
    assert max(speedups) >= 1.5, f"speedups {speedups}"
