"""Figure 1: accuracy vs model size on Spider-like and BIRD-like dev.

The paper's headline chart: CodeS tiers (1B-15B, fine-tuned) compared
against much larger closed-source prompting systems.  The reproduced
claim is the *shape*: SFT CodeS at a fraction of the parameter count
matches or beats the frontier prompting baselines on both benchmarks.
"""

from repro.baselines import make_baseline
from repro.baselines.registry import evaluate_baseline
from repro.config import CODES_TIERS, get_model_config
from repro.eval.harness import evaluate_parser

def test_figure1_size_vs_accuracy(benchmark, spider, bird, parsers, report):
    def run():
        rows = []
        for tier in CODES_TIERS:
            config = get_model_config(tier)
            spider_ex = evaluate_parser(parsers.sft(tier, spider), spider).ex
            bird_ex = evaluate_parser(
                parsers.sft(tier, bird, use_external_knowledge=True),
                bird,
                use_external_knowledge=True,
            ).ex
            rows.append(
                {
                    "model": f"SFT {tier}",
                    "params_B": config.params_billions,
                    "spider EX%": round(100 * spider_ex, 1),
                    "bird w/EK EX%": round(100 * bird_ex, 1),
                }
            )
        for baseline_name in ("din-sql-gpt-4", "c3-chatgpt", "dail-sql-gpt-4"):
            spec = make_baseline(baseline_name)
            spider_ex = evaluate_baseline(spec, spider).ex
            bird_ex = evaluate_baseline(spec, bird, use_external_knowledge=True).ex
            rows.append(
                {
                    "model": baseline_name,
                    "params_B": ">=175 (simulated)",
                    "spider EX%": round(100 * spider_ex, 1),
                    "bird w/EK EX%": round(100 * bird_ex, 1),
                }
            )
        report(
            "figure1_size_vs_accuracy",
            rows,
            "Figure 1 — accuracy vs model size (Spider-like / BIRD-like dev)",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    codes = [row for row in rows if row["model"].startswith("SFT codes")]
    closed = [row for row in rows if not row["model"].startswith("SFT codes")]
    # Shape check: the best CodeS tier matches/beats every closed baseline.
    best_codes = max(row["spider EX%"] for row in codes)
    assert all(best_codes >= row["spider EX%"] for row in closed)
    # Monotone-ish scaling: 15B must beat 1B on both benchmarks.
    assert codes[-1]["spider EX%"] >= codes[0]["spider EX%"]
    assert codes[-1]["bird w/EK EX%"] >= codes[0]["bird w/EK EX%"]
