"""Table 4: few-shot in-context learning across model families.

1/3/5-shot ICL over Spider-like (TS%) and BIRD-like (EX%, with and
without external knowledge).  Reproduced shapes: incremental
pre-training lifts every StarCoder tier into its CodeS counterpart,
smaller models gain the most, accuracy grows with shots, and the
family ordering (CodeS > StarCoder > CodeGen/Llama) holds.
"""

from repro.eval.harness import evaluate_parser

MODELS = (
    "starcoderbase-1b",
    "starcoderbase-7b",
    "codegen2-7b",
    "llama2-7b",
    "llama2-13b",
    "starcoderbase-15b",
    "starcoder-15b",
    "codegen2-16b",
    "codes-1b",
    "codes-3b",
    "codes-7b",
    "codes-15b",
)

SHOTS = (1, 3, 5)
LIMIT = 30  # dev examples per evaluation (keeps the sweep tractable)


def test_table4_incontext_learning(benchmark, spider, bird, parsers, report):
    spider_suites = {}

    def run():
        rows = []
        for model in MODELS:
            parser = parsers.fresh(model)
            spider_retriever = parsers.retriever(parser, spider)
            bird_retriever = parsers.retriever(parser, bird)
            row = {"model": model}
            for shots in SHOTS:
                spider_result = evaluate_parser(
                    parser, spider,
                    demonstrations_per_question=shots,
                    demonstration_retriever=spider_retriever,
                    compute_ts=True, ts_variants=2, suites=spider_suites,
                    limit=LIMIT,
                )
                row[f"spider TS% {shots}-shot"] = round(100 * spider_result.ts, 1)
                bird_result = evaluate_parser(
                    parser, bird,
                    demonstrations_per_question=shots,
                    demonstration_retriever=bird_retriever,
                    limit=LIMIT,
                )
                row[f"bird EX% {shots}-shot"] = round(100 * bird_result.ex, 1)
                bird_ek = evaluate_parser(
                    parser, bird,
                    demonstrations_per_question=shots,
                    demonstration_retriever=bird_retriever,
                    use_external_knowledge=True,
                    limit=LIMIT,
                )
                row[f"bird+EK EX% {shots}-shot"] = round(100 * bird_ek.ex, 1)
            rows.append(row)
        report(
            "table4_incontext_learning",
            rows,
            "Table 4 — few-shot in-context learning (Spider TS / BIRD EX)",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_model = {row["model"]: row for row in rows}
    # Incremental pre-training lifts StarCoder into CodeS at both sizes.
    for base, codes in (
        ("starcoderbase-1b", "codes-1b"),
        ("starcoderbase-7b", "codes-7b"),
        ("starcoderbase-15b", "codes-15b"),
    ):
        assert (
            by_model[codes]["spider TS% 3-shot"]
            >= by_model[base]["spider TS% 3-shot"]
        )
    # CodeS scales with size at 5 shots.
    assert (
        by_model["codes-15b"]["spider TS% 5-shot"]
        >= by_model["codes-1b"]["spider TS% 5-shot"]
    )
    # External knowledge helps the best model on BIRD.
    assert (
        by_model["codes-15b"]["bird+EK EX% 3-shot"]
        >= by_model["codes-15b"]["bird EX% 3-shot"]
    )
