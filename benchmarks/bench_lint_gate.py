"""Lint-gated beam selection: executions avoided vs accuracy (DESIGN.md §8).

The semantic analyzer reorders the beam so statically clean candidates
execute first; demoted candidates that outranked the winner are
execution round-trips the ungated loop would have spent.  Two
conditions per CodeS tier, gate on vs off:

- *clean* — the repro's own generator.  It is schema-grounded (slot
  filling only ever uses real schema items), so beams carry no
  hallucinations and the gate's job is to cost nothing: zero avoided
  executions, identical EX, no measurable latency overhead.
- *hallucinating* — `reliability.SchemaHallucinator` prepends two
  near-miss-schema candidates per beam, the dominant real-LLM error
  class the repro generator cannot produce.  Here the gate pays off:
  each demoted candidate that outranked the winner is an execution
  round-trip saved, at unchanged-or-better EX (candidates are
  demoted, never dropped).
"""

from repro.config import CODES_TIERS
from repro.eval.harness import evaluate_parser
from repro.reliability import SchemaHallucinator

LIMIT = 24


def test_lint_gate_executions_avoided(benchmark, spider, parsers, report):
    def run():
        rows = []
        for tier in CODES_TIERS:
            parser = parsers.sft(tier, spider)
            for condition in ("clean", "hallucinating"):
                for gate in (True, False):
                    parser.lint_gate = gate
                    parser.beam_perturber = (
                        SchemaHallucinator(rate=1.0, n_candidates=2, seed=0)
                        if condition == "hallucinating"
                        else None
                    )
                    try:
                        result = evaluate_parser(
                            parser, spider, limit=LIMIT,
                            name=f"{tier} {condition} gate={gate}",
                        )
                    finally:
                        parser.lint_gate = True
                        parser.beam_perturber = None
                    rows.append(
                        {
                            "model": f"SFT {tier}",
                            "beam": condition,
                            "lint gate": "on" if gate else "off",
                            "EX%": round(100 * result.ex, 1),
                            "semantic errs": result.failures.get(
                                "prediction_semantic_error", 0
                            ),
                            "exec avoided": result.executions_avoided,
                            "latency s/sample": round(result.mean_latency_s, 4),
                        }
                    )
        report(
            "lint_gate",
            rows,
            "Lint-gated beam — executions avoided and EX, gate on vs off",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    on = [row for row in rows if row["lint gate"] == "on"]
    off = [row for row in rows if row["lint gate"] == "off"]
    # Against a hallucinating generator the gate saves round-trips on
    # every tier...
    assert all(
        row["exec avoided"] > 0 for row in on if row["beam"] == "hallucinating"
    )
    # ...the ungated loop never avoids any by definition...
    assert all(row["exec avoided"] == 0 for row in off)
    # ...and reordering-not-dropping keeps aggregate EX no worse, in
    # both conditions.
    for condition in ("clean", "hallucinating"):
        assert sum(r["EX%"] for r in on if r["beam"] == condition) >= sum(
            r["EX%"] for r in off if r["beam"] == condition
        )
