"""Table 3: table/column AUC of the trained schema item classifiers.

One classifier per dataset, trained on its training split, evaluated on
dev.  The paper's shape: Spider AUC > BIRD AUC (ambiguous schemas), and
external knowledge lifts BIRD's AUC.
"""

from repro.linking.classifier import LinkingExample, SchemaItemClassifier


def _examples(dataset, use_ek, split):
    out = []
    for example in getattr(dataset, split):
        question = (
            example.question_with_knowledge() if use_ek else example.question
        )
        schema = dataset.database_of(example).schema
        out.append(LinkingExample.from_sql(question, schema, example.sql))
    return out


def _train_and_eval(dataset, use_ek):
    classifier = SchemaItemClassifier(seed=0)
    classifier.fit(_examples(dataset, use_ek, "train"), epochs=10)
    return classifier.evaluate_auc(_examples(dataset, use_ek, "dev"))


def test_table3_schema_classifier_auc(benchmark, spider, bird, report):
    def run():
        rows = []
        for name, dataset, use_ek in (
            ("Spider", spider, False),
            ("BIRD", bird, False),
            ("BIRD w/ EK", bird, True),
        ):
            table_auc, column_auc = _train_and_eval(dataset, use_ek)
            rows.append(
                {
                    "dataset": name,
                    "table AUC": round(table_auc, 3),
                    "column AUC": round(column_auc, 3),
                }
            )
        report(
            "table3_schema_classifier_auc",
            rows,
            "Table 3 — schema item classifier AUC",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_name = {row["dataset"]: row for row in rows}
    # Shape: Spider links at least as easily as ambiguous BIRD; EK
    # lifts BIRD's linking (the paper's Table 3 pattern).
    assert by_name["Spider"]["column AUC"] >= by_name["BIRD"]["column AUC"]
    assert by_name["BIRD w/ EK"]["column AUC"] >= by_name["BIRD"]["column AUC"]
    assert all(row["table AUC"] > 0.7 for row in rows)
