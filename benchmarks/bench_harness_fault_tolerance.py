"""Reliability layer: eval throughput under injected fault rates.

Wraps every benchmark database in a seeded :class:`FaultyDatabase` and
measures harness throughput (examples/s) and failure accounting at
0% / 5% / 20% injected fault rates.  The point being demonstrated:
a faulty backend degrades *accounting*, not *availability* — every run
completes, reports per-class failure counts, and the retry policy buys
back part of the transiently failed examples without real sleeps.
"""

from repro.datasets.base import Text2SQLDataset
from repro.eval.harness import evaluate_parser
from repro.reliability import FakeClock, FaultyDatabase, RetryPolicy

import time

FAULT_RATES = (0.0, 0.05, 0.20)
LIMIT = 24


def _faulty_copy(dataset: Text2SQLDataset, rate: float, seed: int) -> Text2SQLDataset:
    """The same benchmark with every database behind a fault injector."""
    wrapped = {
        db_id: FaultyDatabase(
            database,
            error_rate=rate * 0.7,
            timeout_rate=rate * 0.3,
            seed=seed + index,
        )
        for index, (db_id, database) in enumerate(sorted(dataset.databases.items()))
    }
    return Text2SQLDataset(
        name=f"{dataset.name} ({rate:.0%} faults)",
        databases=wrapped,
        train=dataset.train,
        dev=dataset.dev,
    )


def test_harness_fault_tolerance(benchmark, spider, parsers, report):
    parser = parsers.sft("codes-1b", spider)

    def run():
        rows = []
        for rate in FAULT_RATES:
            faulty = _faulty_copy(spider, rate, seed=17)
            start = time.perf_counter()
            result = evaluate_parser(
                parser,
                faulty,
                limit=LIMIT,
                retry_policy=RetryPolicy(max_attempts=3, seed=0),
                breaker_threshold=5,
                clock=FakeClock(),  # backoff costs no wall-clock time
            )
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "fault rate": f"{rate:.0%}",
                    "n": result.n_examples,
                    "scored": result.n_scored,
                    "EX%": round(100 * result.ex, 1),
                    "failures": result.n_failures,
                    "quarantined": len(result.quarantined),
                    "throughput ex/s": round(result.n_examples / elapsed, 1),
                }
            )
        report(
            "harness_fault_tolerance",
            rows,
            "reliability — eval throughput under injected faults",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    clean, *faulty_rows = rows
    # A clean backend reports no failures; faulty ones always complete
    # and account for every example.
    assert clean["failures"] == 0
    for row in faulty_rows:
        assert row["n"] == LIMIT
        assert row["scored"] + row["quarantined"] >= row["n"] - row["failures"]
    # More faults -> more accounting, never a crash.
    assert faulty_rows[-1]["failures"] >= faulty_rows[0]["failures"]
