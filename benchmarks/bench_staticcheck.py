"""Staticcheck engine cost: wall-time per rule over the real tree.

Two tables:

1. each registered rule run alone over ``src/repro`` (parsing
   amortized — the module set is loaded once and shared), plus the
   full registry in one pass.  Keeps the lint gate honest about which
   checker pays for the tree walk as rules accumulate: the deep
   checkers (STAGE001's helper fixpoint, LOCK001's summary expansion,
   the CFG-based flow rules) should stay within an order of magnitude
   of the single-visitor ARCH rules.
2. the incremental cache: a cold run (every module analyzed, cache
   populated) versus a warm run (every incremental rule served from
   the cache).  Warm must be measurably faster AND byte-identical.
"""

import time
from pathlib import Path

from repro.staticcheck import (
    REGISTRY,
    FindingCache,
    check_modules,
    load_tree,
    render_json,
    rules_fingerprint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
TREE = REPO_ROOT / "src" / "repro"
ROUNDS = 5


def test_staticcheck_rule_cost(benchmark, report):
    modules = load_tree(TREE)

    def run():
        rows = []
        total_findings = 0
        for rule_id in REGISTRY.ids():
            start = time.perf_counter()
            for _ in range(ROUNDS):
                result = check_modules(
                    modules, rules=REGISTRY.create([rule_id])
                )
            elapsed_ms = 1000 * (time.perf_counter() - start) / ROUNDS
            found = len(result.findings) + result.suppressed
            total_findings += found
            rows.append(
                {
                    "rule": rule_id,
                    "severity": REGISTRY.get(rule_id).severity,
                    "ms/pass": round(elapsed_ms, 2),
                    "ms/file": round(elapsed_ms / len(modules), 4),
                    "findings": found,
                }
            )
        start = time.perf_counter()
        for _ in range(ROUNDS):
            full = check_modules(modules, rules=REGISTRY.create())
        full_ms = 1000 * (time.perf_counter() - start) / ROUNDS
        rows.append(
            {
                "rule": "ALL",
                "severity": "-",
                "ms/pass": round(full_ms, 2),
                "ms/file": round(full_ms / len(modules), 4),
                "findings": len(full.findings) + full.suppressed,
            }
        )
        # The gate itself: the real tree is clean under the full
        # registry (justified suppressions aside).
        assert not full.findings, [f.render() for f in full.findings]
        report(
            "staticcheck_rule_cost",
            rows,
            f"staticcheck — per-rule wall time over src/repro "
            f"({len(modules)} files, mean of {ROUNDS})",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_rule = {row["rule"]: row for row in rows}
    # Every registered rule got a row, plus the whole-registry pass.
    assert set(by_rule) == set(REGISTRY.ids()) | {"ALL"}
    # Running everything at once should not cost much more than the
    # individual passes summed — rules share the parsed module set.
    individual_ms = sum(
        row["ms/pass"] for row in rows if row["rule"] != "ALL"
    )
    assert by_rule["ALL"]["ms/pass"] <= individual_ms * 1.5 + 50.0


def test_staticcheck_cache_cold_vs_warm(benchmark, report, tmp_path):
    modules = load_tree(TREE)
    fingerprint = rules_fingerprint(
        [REGISTRY.get(rule_id) for rule_id in REGISTRY.ids()]
    )
    cache_path = tmp_path / "cache.json"

    def timed(cache):
        start = time.perf_counter()
        result = check_modules(modules, rules=REGISTRY.create(), cache=cache)
        elapsed_ms = 1000 * (time.perf_counter() - start)
        cache.save()
        return result, elapsed_ms

    def run():
        cold, cold_ms = timed(FindingCache(cache_path, fingerprint))
        warm_runs = []
        for _ in range(ROUNDS):
            warm_runs.append(timed(FindingCache(cache_path, fingerprint)))
        warm, _ = warm_runs[0]
        warm_ms = min(ms for _, ms in warm_runs)
        rows = [
            {
                "run": "cold",
                "ms/pass": round(cold_ms, 2),
                "cache hits": cold.cache_hits,
                "cache misses": cold.cache_misses,
            },
            {
                "run": "warm",
                "ms/pass": round(warm_ms, 2),
                "cache hits": warm.cache_hits,
                "cache misses": warm.cache_misses,
            },
            {
                "run": "speedup",
                "ms/pass": round(cold_ms / max(warm_ms, 1e-9), 2),
                "cache hits": "-",
                "cache misses": "-",
            },
        ]
        report(
            "staticcheck_cache_cold_vs_warm",
            rows,
            f"staticcheck — incremental cache over src/repro "
            f"({len(modules)} files, warm = best of {ROUNDS})",
        )
        # warm output is byte-identical to cold…
        assert render_json(warm) == render_json(cold)
        # …every incremental (module, rule) pair was served from cache…
        assert warm.cache_misses == 0 and warm.cache_hits > 0
        # …and skipping the analyses actually saves wall time.
        assert warm_ms < cold_ms
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
