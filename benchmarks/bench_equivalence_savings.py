"""Static equivalence engine: executions avoided at unchanged EX (DESIGN.md §9).

The engine works in two layers: inside the beam, canonically-equal
candidates share one execution (``equivalence_dedup``); in the eval
harness, a prediction proven EQUIVALENT to gold scores without
executing either side (``static_eval``).  Two conditions per CodeS
tier, engine on vs off:

- *clean* — the repro's own generator.  Slot filling dedupes by exact
  text, so beams carry no surface-variant duplicates and the in-beam
  layer should cost nothing; the harness layer still short-circuits
  predictions that canonically match gold.
- *duplicated* — `reliability.BeamDuplicator` over a hallucinated beam
  head (`reliability.SchemaHallucinator`): the duplicator prepends
  surface-variant respellings of the doomed top candidate, the
  redundancy real LLM beams exhibit.  The lint gate is off so each
  duplicate the engine does *not* collapse costs a doomed execution
  round-trip — exactly what the dedup layer saves.

The engine must never move EX: dedup picks the cheapest representative
*within* an equivalence class (execution-preserving by construction)
and the EX short-circuit only fires on proven-equivalent pairs.
"""

from repro.config import CODES_TIERS
from repro.eval.harness import evaluate_parser
from repro.reliability import BeamDuplicator, SchemaHallucinator

LIMIT = 24


def test_equivalence_engine_savings(benchmark, spider, parsers, report):
    def run():
        rows = []
        for tier in CODES_TIERS:
            parser = parsers.sft(tier, spider)
            for condition in ("clean", "duplicated"):
                for engine in (True, False):
                    if condition == "duplicated":
                        hallucinator = SchemaHallucinator(
                            rate=1.0, n_candidates=1, seed=0
                        )
                        duplicator = BeamDuplicator(
                            rate=1.0, n_duplicates=2, seed=0
                        )
                        parser.beam_perturber = lambda beam: duplicator(
                            hallucinator(beam)
                        )
                        parser.lint_gate = False
                    parser.equivalence_dedup = engine
                    try:
                        result = evaluate_parser(
                            parser, spider, limit=LIMIT,
                            name=f"{tier} {condition} engine={engine}",
                            static_eval=engine,
                        )
                    finally:
                        parser.equivalence_dedup = True
                        parser.lint_gate = True
                        parser.beam_perturber = None
                    rows.append(
                        {
                            "model": f"SFT {tier}",
                            "beam": condition,
                            "engine": "on" if engine else "off",
                            "EX%": round(100 * result.ex, 1),
                            "beam deduped": result.beam_deduped,
                            "static equiv": result.static_equivalent,
                            "exec avoided": result.executions_avoided,
                            "latency s/sample": round(result.mean_latency_s, 4),
                        }
                    )
        report(
            "equivalence_savings",
            rows,
            "Static equivalence engine — executions avoided and EX, on vs off",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    on = [row for row in rows if row["engine"] == "on"]
    off = [row for row in rows if row["engine"] == "off"]
    # Under a duplicated beam the engine saves round-trips on every
    # tier (collapsed duplicates plus EX short-circuits)...
    assert all(
        row["exec avoided"] > 0 and row["beam deduped"] > 0
        for row in on
        if row["beam"] == "duplicated"
    )
    # ...with the engine (and lint gate) off nothing is avoided...
    assert all(row["exec avoided"] == 0 for row in off)
    # ...and every saving is execution-preserving: EX identical row for
    # row, not merely no worse.
    for row_on, row_off in zip(on, off):
        assert row_on["EX%"] == row_off["EX%"], (row_on, row_off)
