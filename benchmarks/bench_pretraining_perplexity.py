"""Section 5 / Table 1: the incremental pre-training experiment itself.

Two measurements:

1. held-out SQL perplexity of every family's base mix vs the CodeS
   recipe (base + 2 epochs SQL, 1 NL, 1 NL-to-code) — incremental
   pre-training must cut SQL perplexity for every base;
2. the from-scratch numpy transformer (multi-query attention, learned
   absolute positions, AdamW + cosine decay, grad clip 1.0) trained on
   a small SQL corpus — training loss and perplexity must drop.
"""

from repro.lm import (
    CodeTokenizer,
    CorpusConfig,
    IncrementalPretrainer,
    TransformerConfig,
    TransformerLM,
    Vocabulary,
    build_corpus,
    pretrain_base_lm,
)
from repro.lm.corpus import sql_corpus


def test_incremental_pretraining_perplexity(benchmark, report):
    def run():
        corpus = build_corpus(CorpusConfig(seed=0))
        held_out = sql_corpus(150, seed=999)
        rows = []
        for family in ("starcoder", "codegen", "llama"):
            base = pretrain_base_lm(family, corpus=corpus)
            before = base.perplexity(held_out)
            codes = IncrementalPretrainer(corpus=corpus).run(base)
            after = codes.perplexity(held_out)
            rows.append(
                {
                    "base family": family,
                    "SQL ppl before": round(before, 1),
                    "SQL ppl after": round(after, 1),
                    "improvement %": round(100 * (before - after) / before, 1),
                    "SQL docs seen before": len(base.seen_sql),
                    "SQL docs seen after": len(codes.seen_sql),
                }
            )
        report(
            "pretraining_perplexity",
            rows,
            "§5 — incremental pre-training: held-out SQL perplexity",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Incremental pre-training must cut SQL perplexity for every base.
    assert all(row["SQL ppl after"] < row["SQL ppl before"] for row in rows)
    # SQL-poorer bases improve relatively more (the paper's small-model
    # observation, translated to corpus exposure).
    by_family = {row["base family"]: row for row in rows}
    assert (
        by_family["llama"]["improvement %"]
        >= by_family["starcoder"]["improvement %"]
    )


def test_transformer_pretraining_loss(benchmark, report):
    def run():
        train_docs = sql_corpus(48, seed=1)
        held_docs = sql_corpus(16, seed=2)
        vocab = Vocabulary.build(train_docs + held_docs, max_size=512)
        tokenizer = CodeTokenizer()
        train = [vocab.encode(tokenizer.tokenize(doc)) for doc in train_docs]
        held = [vocab.encode(tokenizer.tokenize(doc)) for doc in held_docs]
        config = TransformerConfig(
            vocab_size=len(vocab), dim=32, n_heads=4, n_layers=2, max_len=48
        )
        model = TransformerLM(config, seed=0)
        ppl_before = model.perplexity(held, vocab)
        history = model.fit(train, vocab, epochs=6, batch_size=8, lr=5e-3)
        ppl_after = model.perplexity(held, vocab)
        rows = [
            {
                "metric": "training loss (first -> last epoch)",
                "value": f"{history[0]:.3f} -> {history[-1]:.3f}",
            },
            {"metric": "held-out perplexity before", "value": round(ppl_before, 1)},
            {"metric": "held-out perplexity after", "value": round(ppl_after, 1)},
            {"metric": "parameters", "value": config.parameter_count},
        ]
        report(
            "transformer_pretraining",
            rows,
            "§5.2 — numpy transformer pre-training (multi-query attention)",
        )
        return history, ppl_before, ppl_after

    history, ppl_before, ppl_after = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert history[-1] < history[0]
    assert ppl_after < ppl_before
