"""Shared fixtures for the benchmark suite.

Datasets and fitted parsers are cached at session scope: many tables
reuse the same SFT checkpoints, and fitting is the expensive step.
Every benchmark writes its table to ``benchmarks/results/<name>.txt``
as well as stdout, so results survive pytest's output capturing.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import (
    CodeSParser,
    DemonstrationRetriever,
    build_bird,
    build_spider,
    pair_samples,
)
from repro.datasets.bird import BirdConfig
from repro.datasets.spider import SpiderConfig
from repro.eval.reporting import format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-scale datasets (bigger dev splits than the unit tests use).
SPIDER_CONFIG = SpiderConfig(
    n_train_databases=6, n_dev_databases=3,
    train_per_database=30, dev_per_database=16,
)
BIRD_CONFIG = BirdConfig(
    n_train_databases=5, n_dev_databases=3,
    train_per_database=30, dev_per_database=16,
)
#: The "hidden test" BIRD split: disjoint seed, same recipe.
BIRD_TEST_CONFIG = BirdConfig(
    n_train_databases=5, n_dev_databases=3,
    train_per_database=30, dev_per_database=16, seed=23,
)


@pytest.fixture(scope="session")
def spider():
    return build_spider(SPIDER_CONFIG)


@pytest.fixture(scope="session")
def bird():
    return build_bird(BIRD_CONFIG)


@pytest.fixture(scope="session")
def bird_test():
    return build_bird(BIRD_TEST_CONFIG)


class ParserCache:
    """Session cache of fitted parsers keyed by (tier, dataset, ek)."""

    def __init__(self):
        self._cache: dict[tuple[str, str, bool], CodeSParser] = {}

    def sft(self, tier: str, dataset, use_external_knowledge: bool = False):
        key = (tier, dataset.name, use_external_knowledge)
        if key not in self._cache:
            parser = CodeSParser(tier)
            parser.fit(
                pair_samples(dataset),
                use_external_knowledge=use_external_knowledge,
            )
            self._cache[key] = parser
        return self._cache[key]

    def fresh(self, tier: str):
        return CodeSParser(tier)

    def retriever(self, parser, dataset, mode: str = "pattern-aware"):
        return DemonstrationRetriever(
            dataset.train, embedder=parser.embedder, mode=mode
        )


@pytest.fixture(scope="session")
def parsers():
    return ParserCache()


@pytest.fixture(scope="session")
def report():
    """Write a result table to stdout and benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, rows, title: str) -> None:
        text = format_table(rows, title=title)
        print("\n" + text + "\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report
