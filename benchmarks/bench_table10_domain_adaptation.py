"""Table 10: real-world domain adaptation (Bank-Financials / Aminer).

The deployment pathways of §9.6:

- transfer of checkpoints fine-tuned on Spider / BIRD (zero annotation);
- 3-shot ICL with the small annotated seed set;
- SFT on bi-directionally augmented data;
- SFT on merged data (Spider + BIRD + both augmented domain sets);
- a prompting GPT-3.5 baseline.

Reproduced shapes: checkpoint transfer is weak (different annotation
styles), augmentation-based SFT clearly beats few-shot, and merged
training does not collapse either domain.
"""

from repro.augment import augment_domain
from repro.baselines import make_baseline
from repro.baselines.registry import evaluate_baseline
from repro.core import CodeSParser
from repro.core.retriever import DemonstrationRetriever
from repro.datasets import build_aminer_simplified, build_bank_financials
from repro.eval.harness import evaluate_parser, pair_samples

TIER = "codes-7b"


def test_table10_domain_adaptation(benchmark, spider, bird, parsers, report):
    def run():
        domains = {
            "bank_financials": build_bank_financials(),
            "aminer_simplified": build_aminer_simplified(),
        }
        augmented = {
            name: augment_domain(dataset, seed=3)
            for name, dataset in domains.items()
        }
        rows = []

        def add_row(method, evaluate):
            row = {"method": method}
            for name, dataset in domains.items():
                row[f"{name} EX%"] = round(100 * evaluate(name, dataset), 1)
            rows.append(row)

        # Prompting baseline: 3-shot GPT-3.5 with the seed pairs.
        spec = make_baseline("gpt-3.5")
        add_row(
            "3-shot gpt-3.5",
            lambda name, dataset: evaluate_baseline(spec, dataset).ex,
        )

        # Checkpoint transfer from Spider and from BIRD (w/ EK).
        spider_parser = parsers.sft(TIER, spider)
        add_row(
            f"SFT {TIER} using Spider",
            lambda name, dataset: evaluate_parser(spider_parser, dataset).ex,
        )
        bird_parser = parsers.sft(TIER, bird, use_external_knowledge=True)
        add_row(
            f"SFT {TIER} using BIRD w/EK",
            lambda name, dataset: evaluate_parser(bird_parser, dataset).ex,
        )

        # Few-shot with the seed annotations only.
        def fewshot(name, dataset):
            parser = CodeSParser(TIER)
            retriever = DemonstrationRetriever(
                dataset.train, embedder=parser.embedder
            )
            return evaluate_parser(
                parser, dataset, demonstrations_per_question=3,
                demonstration_retriever=retriever,
            ).ex

        add_row(f"3-shot {TIER}", fewshot)

        # SFT on the augmented per-domain data.
        def sft_augmented(name, dataset):
            parser = CodeSParser(TIER)
            database = next(iter(dataset.databases.values()))
            parser.fit([(example, database) for example in augmented[name]])
            return evaluate_parser(parser, dataset).ex

        add_row(f"SFT {TIER} using aug. data", sft_augmented)

        # One merged model over Spider + BIRD + both augmented domains.
        merged_samples = pair_samples(spider) + pair_samples(bird)
        for name, dataset in domains.items():
            database = next(iter(dataset.databases.values()))
            merged_samples.extend(
                (example, database) for example in augmented[name]
            )
        merged_parser = CodeSParser(TIER)
        merged_parser.fit(merged_samples)
        add_row(
            f"SFT {TIER} using merged data",
            lambda name, dataset: evaluate_parser(merged_parser, dataset).ex,
        )

        report(
            "table10_domain_adaptation",
            rows,
            "Table 10 — new-domain adaptation (EX%)",
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_method = {row["method"]: row for row in rows}
    aug = by_method[f"SFT {TIER} using aug. data"]
    few = by_method[f"3-shot {TIER}"]
    for domain in ("bank_financials", "aminer_simplified"):
        # Augmentation-based SFT beats few-shot with the same seed pairs.
        assert aug[f"{domain} EX%"] >= few[f"{domain} EX%"]
    # Merged training prevents per-domain collapse (the paper's claim);
    # note: unlike the paper, checkpoint *transfer* is strong here
    # because the synthetic domains share the benchmarks' question
    # grammar — see EXPERIMENTS.md.
    merged = by_method[f"SFT {TIER} using merged data"]
    for domain in ("bank_financials", "aminer_simplified"):
        assert merged[f"{domain} EX%"] >= aug[f"{domain} EX%"] - 20.0
