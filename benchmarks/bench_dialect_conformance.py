"""Cross-dialect conformance: coverage and throughput per gold set.

Runs the full conformance suite — every bundled gold set executed on
each non-reference backend in its own dialect, results compared
against SQLite — and reports one row per dataset (examples, matched,
divergent, errors, skipped) plus a totals row with wall time and
throughput.  This is the execution-layer analogue of the engine's
golden-parity suite: the table doubles as the paper-style evidence
that the ANSI columnar backend is a drop-in substitute for SQLite on
the entire bundled corpus.

The assertions make the benchmark a gate, not just a report: zero
divergences, zero errors, zero skips, and full-corpus throughput
above a floor that keeps the suite cheap enough for CI.
"""

import time

import pytest

from repro.eval.conformance import run_conformance

pytestmark = pytest.mark.dialects

#: Conformance checks/second the full corpus must sustain (measured
#: ~900/s; the floor leaves ~10x headroom for slow CI machines).
MIN_THROUGHPUT = 90.0


def test_dialect_conformance_full_corpus(benchmark, report):
    def run():
        start = time.perf_counter()
        conformance = run_conformance()
        elapsed_s = time.perf_counter() - start
        return conformance, elapsed_s

    conformance, elapsed_s = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for backend_name, dialect_report in sorted(conformance.reports.items()):
        for dataset in conformance.datasets:
            tally = dialect_report.per_dataset.get(dataset, {})
            examples = sum(tally.values())
            rows.append(
                {
                    "backend": backend_name,
                    "dataset": dataset,
                    "examples": examples,
                    "matched": tally.get("matched", 0),
                    "divergent": tally.get("divergent", 0),
                    "errors": tally.get("error", 0),
                    "skipped": tally.get("skipped", 0),
                }
            )
        total = dialect_report.as_row()
        rows.append(
            {
                "backend": backend_name,
                "dataset": "TOTAL",
                "examples": dialect_report.executed + dialect_report.skipped,
                "matched": total["matched"],
                "divergent": total["divergent"],
                "errors": total["errors"],
                "skipped": total["skipped"],
            }
        )
    throughput = conformance.total_examples / max(elapsed_s, 1e-9)
    report(
        "dialect_conformance",
        rows,
        f"cross-dialect conformance vs. sqlite reference "
        f"({conformance.total_examples} gold examples, "
        f"{len(conformance.datasets)} sets, {elapsed_s:.2f}s, "
        f"{throughput:.0f} checks/s)",
    )

    # The gate: every bundled gold example executes and matches on
    # every registered backend, at CI-friendly throughput.
    assert conformance.ok, conformance.render()
    for dialect_report in conformance.reports.values():
        assert dialect_report.skipped == 0, dialect_report.as_row()
        assert dialect_report.matched == dialect_report.executed
    assert throughput >= MIN_THROUGHPUT, f"{throughput:.0f} checks/s"
