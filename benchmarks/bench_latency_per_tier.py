"""Section 9.7: inference latency and deployment requirements.

Measures wall-clock end-to-end latency (prompt construction through
execution-guided selection) per CodeS tier, next to the *simulated*
per-sample API latency of the closed prompting baselines.  Reproduced
shape: latency grows with tier size but stays orders of magnitude below
the prompting pipelines' API round-trips.
"""

from repro.baselines import make_baseline
from repro.config import CODES_TIERS, get_model_config
from repro.eval.harness import evaluate_parser

LIMIT = 24


def test_latency_per_tier(benchmark, spider, parsers, report):
    def run():
        rows = []
        for tier in CODES_TIERS:
            parser = parsers.sft(tier, spider)
            result = evaluate_parser(parser, spider, limit=LIMIT)
            rows.append(
                {
                    "model": f"SFT {tier}",
                    "params_B": get_model_config(tier).params_billions,
                    "latency s/sample": round(result.mean_latency_s, 4),
                    "source": "measured",
                }
            )
        for name in ("din-sql-gpt-4", "chatgpt"):
            spec = make_baseline(name)
            rows.append(
                {
                    "model": name,
                    "params_B": ">=175",
                    "latency s/sample": spec.simulated_api_latency_s,
                    "source": "simulated API",
                }
            )
        report("latency_per_tier", rows, "§9.7 — inference latency per sample")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    measured = [row for row in rows if row["source"] == "measured"]
    # Bigger tiers search more and are therefore slower.
    assert (
        measured[-1]["latency s/sample"] >= measured[0]["latency s/sample"] * 0.8
    )
    # Local inference beats the prompting pipelines' API latency.
    api = [row for row in rows if row["source"] == "simulated API"]
    assert all(
        m["latency s/sample"] < a["latency s/sample"] for m in measured for a in api
    )
